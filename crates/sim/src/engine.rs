use crate::arena::{Outcome, ReqArena};
use crate::audit::AuditReport;
use crate::device::{DeviceState, DeviceStats, InflightItem, WorkItem};
use crate::equeue::EventQueue;
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::lifecycle::{LifecycleConfig, RetryPolicy};
use crate::metrics::RetryStats;
use crate::{KernelImpl, LatencyStats, Policy};
use poly_device::{DeviceKind, PcieLink};
use poly_ir::{KernelGraph, KernelId};
use poly_obs::{Event as ObsEvent, Recorder};
use poly_sched::Pool;
use std::collections::VecDeque;
use std::sync::Arc;

/// Fraction of GPU board idle power drawn when the current policy leaves
/// the GPU unused (deep-idle clocks, memory parked).
pub const GPU_PARKED_FRACTION: f64 = 0.3;

/// Static simulation parameters of one leaf node.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// PCIe link paying inter-platform kernel transfers.
    pub pcie: PcieLink,
    /// QoS (p99) latency bound in milliseconds, for violation accounting.
    pub latency_bound_ms: f64,
    /// GPU board idle power before any kernel has run, in watts.
    pub gpu_idle_w: f64,
    /// FPGA board idle power before any bitstream is loaded, in watts.
    pub fpga_idle_w: f64,
    /// FPGA reconfiguration time in milliseconds.
    pub fpga_reconfig_ms: f64,
    /// Per-request lifecycle policy (deadlines, bounded retries, hedged
    /// dispatch). The default disables all of it — legacy behavior.
    pub lifecycle: LifecycleConfig,
    /// Dispatch-time dynamic layer over the interval plan (`None` = the
    /// purely static plan, the default): per-request implementation
    /// choice among the policy's top-k alternates, plus work-stealing to
    /// idle devices. Takes effect only when the active [`Policy`] carries
    /// alternates ([`Policy::with_alternates`]).
    pub dynamic: Option<DynamicDispatch>,
    /// Label of the execution backend whose timing feeds the DES clock
    /// ("analytical" = modeled, "cpu" = host-measured), stamped onto
    /// every `ExecStart` telemetry span. Purely informational — the
    /// engine advances on whatever latencies the active [`Policy`]
    /// carries, so measured and analytical time coexist in one clock.
    pub backend_label: &'static str,
    /// Cross-kernel pipelined streaming over the DAG edges. The default
    /// (`depth == 0`) is barrier semantics — the engine's behavior is
    /// bit-identical to a build without this field.
    pub pipeline: PipelineConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            pcie: PcieLink::gen3_x16(),
            latency_bound_ms: 200.0,
            gpu_idle_w: 42.0,
            fpga_idle_w: 4.5,
            fpga_reconfig_ms: 220.0,
            lifecycle: LifecycleConfig::default(),
            dynamic: None,
            backend_label: "analytical",
            pipeline: PipelineConfig::default(),
        }
    }
}

/// Cross-kernel pipelined streaming (MKPipe-style): a producer kernel's
/// output is split into `tiles` chunks flowing to each DAG successor
/// through a bounded channel of `depth` credits, so the successor starts
/// on the first tile rather than the last. The producer stalls when the
/// consumer cannot drain credits fast enough; `depth == 0` disables the
/// whole mechanism and reproduces barrier semantics event-for-event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Channel depth in tile credits; `0` = barrier semantics (default).
    pub depth: u32,
    /// Tiles each inter-kernel payload is split into.
    pub tiles: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            depth: 0,
            tiles: poly_ir::DEFAULT_TILES,
        }
    }
}

impl PipelineConfig {
    /// Pipelined streaming with `depth` credits at the default tiling.
    #[must_use]
    pub fn with_depth(depth: u32) -> Self {
        Self {
            depth,
            ..Self::default()
        }
    }

    /// Whether streaming is active (a zero depth or a single tile is the
    /// barrier degenerate case).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.depth > 0 && self.tiles > 1
    }
}

/// Configuration of the hybrid static/dynamic dispatch layer: at
/// dispatch time each request picks among the interval plan's top-k
/// implementations by its own input size and the current per-device
/// queue estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicDispatch {
    /// Work-stealing escape hatch: a device going idle with an empty
    /// queue pulls the newest item from the most backlogged queue it can
    /// serve without a bitstream swap.
    pub steal: bool,
}

impl Default for DynamicDispatch {
    fn default() -> Self {
        Self { steal: true }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Arrival {
        req: usize,
    },
    Dispatch {
        req: usize,
        kernel: KernelId,
    },
    DeviceFree {
        dev: usize,
    },
    /// `attempt` invalidates completions of executions killed by a device
    /// fail-stop: a stale event whose attempt no longer matches the
    /// request's counter is ignored. `hedge` marks completions of hedge
    /// copies (win attribution only).
    Complete {
        req: usize,
        kernel: KernelId,
        attempt: u32,
        hedge: bool,
    },
    /// Scripted fault (index into `Simulator::faults`).
    Fault {
        idx: usize,
    },
    /// The request's deadline: if it is still incomplete, every copy of
    /// its work is cancelled and it is marked timed out.
    Deadline {
        req: usize,
    },
    /// Hedge check scheduled at dispatch + hedge delay: if the stage is
    /// still outstanding under the same attempt, fire a second copy on
    /// another device.
    HedgeFire {
        req: usize,
        kernel: KernelId,
        attempt: u32,
    },
}

/// Per-kernel execution breakdown over a simulation window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelStats {
    /// Kernel executions started (batches, not requests).
    pub executions: usize,
    /// Requests served across those executions.
    pub requests: usize,
    /// Total queueing delay observed by requests before their kernel
    /// execution started, in milliseconds.
    pub queue_wait_ms: f64,
    /// Total device-occupancy time of this kernel's executions, in
    /// milliseconds.
    pub busy_ms: f64,
}

impl KernelStats {
    /// Mean batch size of the kernel's executions.
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.requests as f64 / self.executions as f64
        }
    }

    /// Mean per-request queueing delay in milliseconds.
    #[must_use]
    pub fn mean_wait_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.queue_wait_ms / self.requests as f64
        }
    }
}

/// One recorded kernel execution (timeline/Gantt entry), available when
/// recording is enabled via [`Simulator::record_timeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionRecord {
    /// Device index within the pool.
    pub device: usize,
    /// Device kind.
    pub kind: DeviceKind,
    /// Kernel executed.
    pub kernel: KernelId,
    /// Implementation index of the policy at execution time.
    pub impl_index: usize,
    /// When the device committed to the batch (reconfiguration included).
    pub start_ms: f64,
    /// Reconfiguration time paid before execution (FPGA bitstream swap).
    pub reconfig_ms: f64,
    /// When results complete.
    pub completion_ms: f64,
    /// Requests served by this execution.
    pub batch: usize,
}

/// Summary of one completed simulation (or simulation segment).
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated duration in milliseconds.
    pub duration_ms: f64,
    /// Requests that arrived.
    pub arrived: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Latency distribution of completed requests.
    pub latency: LatencyStats,
    /// Fraction of completed requests exceeding the QoS bound.
    pub qos_violation_ratio: f64,
    /// Mean node power over the duration (idle + active, all devices), W.
    pub avg_power_w: f64,
    /// Total energy over the duration, in joules.
    pub energy_j: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Per-device statistics.
    pub devices: Vec<DeviceStats>,
    /// Per-kernel execution breakdown, indexed by kernel id.
    pub kernels: Vec<KernelStats>,
    /// Fail-stop faults applied since construction.
    pub device_failures: usize,
    /// Re-issue accounting (fail-stop retries, exhausted retry budgets,
    /// hedges) since construction.
    pub retry: RetryStats,
    /// Requests abandoned at their deadline since construction (0 unless
    /// the lifecycle config enables deadlines).
    pub timed_out: usize,
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} requests in {:.1} s: p50 {:.1} ms, p99 {:.1} ms, {:.1} RPS, {:.1} W ({:.2}% over bound)",
            self.completed,
            self.arrived,
            self.duration_ms / 1000.0,
            self.latency.p50(),
            self.latency.p99(),
            self.throughput_rps,
            self.avg_power_w,
            self.qos_violation_ratio * 100.0
        )
    }
}

/// Discrete-event simulator of one accelerator-outfitted leaf node.
///
/// Drive it by enqueuing arrivals
/// ([`enqueue_arrivals`](Self::enqueue_arrivals)), advancing time
/// ([`advance_to`](Self::advance_to)) — optionally swapping the execution
/// [`Policy`] between advances, which is how the Poly runtime's re-planning
/// loop is simulated — and finally collecting a [`SimReport`]
/// ([`finish`](Self::finish)).
#[derive(Debug, Clone)]
pub struct Simulator {
    graph: KernelGraph,
    policy: Policy,
    config: SimConfig,
    devices: Vec<DeviceState>,
    /// Timer-wheel event queue; stamps each event with a monotone
    /// sequence number and pops in exact `(time, seq)` order.
    events: EventQueue<EventKind>,
    /// Struct-of-arrays request state with global, never-reused indices
    /// (settled prefixes compact away at accounting resets).
    requests: ReqArena,
    now: f64,
    arrived: usize,
    completed: usize,
    stats_since: f64,
    /// Per-kernel batch-wait budget (ms after request arrival by which the
    /// kernel must start to keep the QoS bound reachable); 0 disables
    /// waiting. Recomputed on policy changes.
    wait_budget: Vec<f64>,
    /// Cached topological order of the graph (the dynamic chooser's
    /// downstream-margin pass walks it in reverse on every at-risk
    /// dispatch).
    topo_order: Vec<KernelId>,
    /// EWMA arrival rate (requests per ms), for adaptive batching.
    arrival_rate: f64,
    last_arrival_ms: f64,
    /// Completed-request latencies since the last accounting reset.
    /// Shared (copy-on-write) so report generation can snapshot it in
    /// O(1) instead of cloning the whole buffer.
    latencies: Arc<Vec<f64>>,
    /// Reusable workspace for quantile selection at report time.
    lat_scratch: Vec<f64>,
    segment_latencies: Vec<f64>,
    segment_arrived: usize,
    segment_completed: usize,
    kernel_stats: Vec<KernelStats>,
    timeline: Option<Vec<ExecutionRecord>>,
    /// Scripted faults, indexed by `EventKind::Fault`.
    faults: Vec<FaultEvent>,
    /// Work with no healthy device of the required kind, parked until a
    /// policy change or a recovery makes it dispatchable again.
    stranded: Vec<WorkItem>,
    /// Fail-stops applied since construction.
    fault_failures: usize,
    /// Re-issue ledger (fail-stop retries, exhausted budgets, hedges),
    /// since construction.
    retry_stats: RetryStats,
    /// Fault events applied since the last `take_fault_counts`.
    seg_fault_events: usize,
    /// Retried work items since the last `take_fault_counts`.
    seg_retries: usize,
    /// Requests timed out / failed since the last `take_lifecycle_counts`.
    seg_timeouts: usize,
    seg_failed: usize,
    /// Rolling per-kernel stage-latency windows feeding the hedge-delay
    /// quantile (filled only when hedging is enabled).
    hedge_window: Vec<VecDeque<f64>>,
    // --- reusable scratch buffers (hot-path allocation elimination) --------
    /// Batch under formation in `try_start`.
    batch_scratch: Vec<WorkItem>,
    /// Queue remainder while a batch forms in `try_start`.
    rest_scratch: VecDeque<WorkItem>,
    /// Successor edges of the completing kernel in `complete`.
    succ_scratch: Vec<(KernelId, u64)>,
    /// Devices touched by a cancellation sweep.
    touched_scratch: Vec<usize>,
    /// Hedge-window copy for quantile selection.
    hedge_scratch: Vec<f64>,
    /// Per-kernel remainder table for `downstream_margin`.
    margin_scratch: Vec<f64>,
    // --- lifetime audit counters (never reset; see `audit`) ---------------
    life_admitted: usize,
    life_completed: usize,
    life_timed_out: usize,
    life_failed: usize,
    life_cancelled: usize,
    audit_stale: usize,
    audit_double_terminal: usize,
    audit_clock_regressions: usize,
    booked_busy_mj: f64,
    refunded_busy_mj: f64,
    /// Telemetry sink (`None` = recording off). The recorder keeps its
    /// own sequence numbering and never feeds back into simulation state,
    /// so attaching one cannot perturb results.
    recorder: Option<Box<dyn Recorder>>,
}

impl Simulator {
    /// Create a simulator for `graph` on the devices of `pool`, executing
    /// per `policy`.
    #[must_use]
    pub fn new(graph: KernelGraph, pool: &Pool, policy: Policy, config: SimConfig) -> Self {
        let n_kernels = graph.len();
        let devices = pool
            .kinds()
            .iter()
            .map(|&kind| match kind {
                DeviceKind::Gpu => DeviceState::new(kind, 0.0, config.gpu_idle_w),
                DeviceKind::Fpga => {
                    DeviceState::new(kind, config.fpga_reconfig_ms, config.fpga_idle_w)
                }
            })
            .collect();
        let pred_template: Vec<u16> = (0..n_kernels)
            .map(|i| {
                u16::try_from(graph.predecessors(KernelId(i)).count())
                    .expect("predecessor count fits u16")
            })
            .collect();
        let mut sim = Self {
            graph,
            policy,
            config,
            devices,
            events: EventQueue::new(),
            requests: ReqArena::new(pred_template),
            now: 0.0,
            arrived: 0,
            completed: 0,
            stats_since: 0.0,
            wait_budget: Vec::new(),
            topo_order: Vec::new(),
            arrival_rate: 0.0,
            last_arrival_ms: -1.0,
            latencies: Arc::new(Vec::new()),
            lat_scratch: Vec::new(),
            segment_latencies: Vec::new(),
            segment_arrived: 0,
            segment_completed: 0,
            kernel_stats: vec![KernelStats::default(); n_kernels],
            timeline: None,
            faults: Vec::new(),
            stranded: Vec::new(),
            fault_failures: 0,
            retry_stats: RetryStats::default(),
            seg_fault_events: 0,
            seg_retries: 0,
            seg_timeouts: 0,
            seg_failed: 0,
            hedge_window: vec![VecDeque::new(); n_kernels],
            batch_scratch: Vec::new(),
            rest_scratch: VecDeque::new(),
            succ_scratch: Vec::new(),
            touched_scratch: Vec::new(),
            hedge_scratch: Vec::new(),
            margin_scratch: Vec::new(),
            life_admitted: 0,
            life_completed: 0,
            life_timed_out: 0,
            life_failed: 0,
            life_cancelled: 0,
            audit_stale: 0,
            audit_double_terminal: 0,
            audit_clock_regressions: 0,
            booked_busy_mj: 0.0,
            refunded_busy_mj: 0.0,
            recorder: None,
        };
        sim.preload_bitstreams();
        sim.recompute_wait_budgets();
        sim.apply_idle_floors();
        sim
    }

    /// Park platforms the current policy does not use: a GPU with no
    /// assigned kernel drops to its deep-idle (low-DVFS, memory parked)
    /// power — the paper's runtime "reduc[es] the GPU operating frequency"
    /// at low load (Section VI-C). [`GPU_PARKED_FRACTION`] of board idle.
    fn apply_idle_floors(&mut self) {
        let uses_gpu = self
            .policy
            .impls()
            .iter()
            .any(|i| i.kind == DeviceKind::Gpu);
        for d in &mut self.devices {
            if d.kind == DeviceKind::Gpu && d.healthy {
                d.idle_power_w = if uses_gpu {
                    self.config.gpu_idle_w
                } else {
                    self.config.gpu_idle_w * GPU_PARKED_FRACTION
                };
            }
        }
    }

    /// Slack-aware batch budgets: a kernel's batch may be held open until
    /// `request arrival + budget`, where the budget is what remains of the
    /// QoS bound after the downstream critical path at full-batch
    /// latencies. FPGAs and unbatched implementations never wait.
    fn recompute_wait_budgets(&mut self) {
        let order = self
            .graph
            .topological_order()
            .expect("validated graph is acyclic");
        let mut remaining = vec![0.0_f64; self.graph.len()];
        for &id in order.iter().rev() {
            let tail = self
                .graph
                .successors(id)
                .map(|e| {
                    let differs = self.policy.of(e.from).kind != self.policy.of(e.to).kind;
                    let t = if differs {
                        self.config.pcie.transfer_ms(e.bytes)
                    } else {
                        0.0
                    };
                    t + remaining[e.to.0]
                })
                .fold(0.0_f64, f64::max);
            remaining[id.0] = self.policy.of(id).latency_ms + tail;
        }
        self.wait_budget = (0..self.graph.len())
            .map(|i| {
                let imp = self.policy.of(KernelId(i));
                if imp.kind == DeviceKind::Gpu && imp.batch > 1 {
                    (self.config.latency_bound_ms * 0.6 - remaining[i]).max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
        self.topo_order = order;
    }

    /// Downstream margin for one request of relative input `size` about
    /// to dispatch `kernel`: the critical path from `kernel` (exclusive)
    /// to the sinks, each node priced at the best implementation the
    /// dispatcher could *actually* use there — the node's primary, or a
    /// top-k FPGA alternate whose bitstream is resident right now (an
    /// open express lane). Each candidate costs its size-scaled
    /// single-request latency plus the current backlog of the least
    /// loaded device it may run on. Pricing only reachable options is
    /// what keeps the margin honest: a nominally fast GPU alternate the
    /// dispatcher will never take (it would land on the plan's scarce
    /// bottleneck device) must not make an at-risk request look safe,
    /// and an unloaded lane costs infinity until someone opens it.
    fn downstream_margin(&mut self, kernel: KernelId, size: f64) -> f64 {
        let sg = poly_device::size_scale(DeviceKind::Gpu, size);
        let sf = poly_device::size_scale(DeviceKind::Fpga, size);
        // Per-device backlog right now: busy tail plus queued work, derated.
        let now = self.now;
        let load: Vec<f64> = self
            .devices
            .iter()
            .map(|d| {
                let queued: f64 = d.queue.iter().map(|it| it.est_ms).sum();
                (d.busy_until.max(now) - now) + queued * d.derate
            })
            .collect();
        let order = std::mem::take(&mut self.topo_order);
        let mut rem = std::mem::take(&mut self.margin_scratch);
        rem.clear();
        rem.resize(self.graph.len(), 0.0);
        for &id in order.iter().rev() {
            let mut best = 0.0_f64;
            for e in self.graph.successors(id) {
                let prim = self.policy.of(e.to);
                let mut node = f64::INFINITY;
                for imp in self.policy.alts_of(e.to) {
                    let is_primary = imp.kind == prim.kind && imp.impl_index == prim.impl_index;
                    // Mirror the dispatch rule exactly: a downstream node
                    // runs its primary or escapes through a resident FPGA
                    // lane; it never escapes to the GPU.
                    if !is_primary && imp.kind != DeviceKind::Fpga {
                        continue;
                    }
                    // Congestion of the devices this implementation may
                    // actually run on: any healthy GPU, or the healthy
                    // FPGAs holding exactly this bitstream (infinite if
                    // none — an unloaded lane is not an option).
                    let mut cong = f64::INFINITY;
                    for (i, d) in self.devices.iter().enumerate() {
                        if !d.healthy {
                            continue;
                        }
                        let ok = match imp.kind {
                            DeviceKind::Gpu => d.kind == DeviceKind::Gpu,
                            DeviceKind::Fpga => d.loaded == Some((e.to, imp.impl_index)),
                        };
                        if ok {
                            cong = cong.min(load[i]);
                        }
                    }
                    let scale = match imp.kind {
                        DeviceKind::Gpu => sg,
                        DeviceKind::Fpga => sf,
                    };
                    node = node.min(imp.latency_single_ms * scale + cong);
                }
                best = best.max(node + rem[e.to.0]);
            }
            rem[id.0] = best;
        }
        let margin = rem[kernel.0];
        self.margin_scratch = rem;
        self.topo_order = order;
        margin
    }

    /// Configure FPGA devices with the policy's bitstreams at time zero,
    /// mirroring how a leaf node pre-provisions accelerators when it
    /// adopts a plan. Devices are split among the policy's FPGA kernels
    /// **proportionally to their service demand** (largest remainder, at
    /// least one each while devices last) — the same split the analytic
    /// capacity model assumes. Later policy changes pay reconfiguration.
    fn preload_bitstreams(&mut self) {
        let fpga_kernels: Vec<(poly_ir::KernelId, usize, f64, f64)> = self
            .policy
            .impls()
            .iter()
            .filter(|i| i.kind == DeviceKind::Fpga)
            .map(|i| (i.kernel, i.impl_index, i.idle_power_w, i.service_ms))
            .collect();
        if fpga_kernels.is_empty() {
            return;
        }
        let fpga_devs: Vec<usize> = self
            .devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == DeviceKind::Fpga)
            .map(|(i, _)| i)
            .collect();
        let n = fpga_devs.len() as f64;
        let total: f64 = fpga_kernels.iter().map(|k| k.3).sum();
        let mut shares: Vec<f64> = fpga_kernels
            .iter()
            .map(|k| {
                if total > 0.0 {
                    (k.3 / total * n).floor().max(1.0)
                } else {
                    1.0
                }
            })
            .collect();
        // Trim if minimums overshoot, then hand out spares to the most
        // loaded kernels.
        while shares.iter().sum::<f64>() > n && shares.iter().any(|&s| s > 1.0) {
            let (idx, _) = shares
                .iter()
                .enumerate()
                .filter(|(_, &s)| s > 1.0)
                .map(|(j, &s)| (j, fpga_kernels[j].3 / s))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("some share above one");
            shares[idx] -= 1.0;
        }
        let mut spare = n - shares.iter().sum::<f64>();
        while spare >= 1.0 {
            let (idx, _) = fpga_kernels
                .iter()
                .enumerate()
                .map(|(j, k)| (j, k.3 / shares[j]))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            shares[idx] += 1.0;
            spare -= 1.0;
        }
        let mut cursor = fpga_devs.into_iter();
        for ((kernel, idx, idle, _), share) in fpga_kernels.iter().zip(&shares) {
            for _ in 0..(*share as usize) {
                let Some(dev) = cursor.next() else { return };
                self.devices[dev].loaded = Some((*kernel, *idx));
                self.devices[dev].idle_power_w = *idle;
            }
        }
    }

    /// Current simulation time in milliseconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Enable (or disable) execution-timeline recording. Recording keeps
    /// one [`ExecutionRecord`] per started batch, capped at 100 000
    /// entries; intended for Gantt-style inspection of short runs.
    pub fn record_timeline(&mut self, enable: bool) {
        self.timeline = if enable { Some(Vec::new()) } else { None };
    }

    /// The recorded executions so far (empty when recording is off).
    #[must_use]
    pub fn timeline(&self) -> &[ExecutionRecord] {
        self.timeline.as_deref().unwrap_or(&[])
    }

    /// Attach (or detach, with `None`) a telemetry [`Recorder`]. Every
    /// emission site gates on [`Recorder::enabled`] before constructing
    /// an event, so a `NullRecorder` (or no recorder) costs one branch.
    pub fn set_recorder(&mut self, recorder: Option<Box<dyn Recorder>>) {
        self.recorder = recorder;
    }

    /// Whether an enabled recorder is attached (emission sites use this
    /// to skip event construction entirely when recording is off).
    #[must_use]
    pub fn recording(&self) -> bool {
        self.recorder.as_ref().is_some_and(|r| r.enabled())
    }

    /// Record `event` at sim time `t_ms`.
    fn obs_at(&mut self, t_ms: f64, event: ObsEvent) {
        if let Some(r) = &mut self.recorder {
            r.record(t_ms, event);
        }
    }

    /// Record `event` at the current sim time.
    fn obs(&mut self, event: ObsEvent) {
        let now = self.now;
        self.obs_at(now, event);
    }

    /// Replace the execution policy. Running executions finish under the
    /// old implementations; future dispatches use the new ones (FPGAs pay
    /// reconfiguration when the loaded bitstream no longer matches).
    pub fn set_policy(&mut self, policy: Policy) {
        assert_eq!(
            policy.len(),
            self.graph.len(),
            "policy must cover every kernel"
        );
        self.policy = policy;
        self.recompute_wait_budgets();
        self.apply_idle_floors();
        // A new plan may make stranded work dispatchable again (e.g. it
        // moves a kernel off a failed platform).
        self.redispatch_stranded();
    }

    /// Enqueue request arrivals at the given absolute times (ms). Times
    /// before the current simulation time are clamped to "now". When the
    /// lifecycle config sets a deadline factor, each request also gets an
    /// absolute deadline (`arrival + factor × bound`) at which all its
    /// outstanding work is cancelled.
    pub fn enqueue_arrivals(&mut self, times: &[f64]) {
        for &t in times {
            self.enqueue_one(t, 1.0);
        }
    }

    /// [`enqueue_arrivals`](Self::enqueue_arrivals) with per-request
    /// relative input sizes (`sizes[i]` pairs with `times[i]`; 1.0 =
    /// nominal). Execution and energy scale per
    /// [`poly_device::size_scale`]; the deadline stays the QoS bound —
    /// the SLO does not grow with the input.
    ///
    /// # Panics
    /// Panics unless `times` and `sizes` have equal length.
    pub fn enqueue_arrivals_sized(&mut self, times: &[f64], sizes: &[f64]) {
        assert_eq!(times.len(), sizes.len(), "one size per arrival");
        for (&t, &size) in times.iter().zip(sizes) {
            self.enqueue_one(t, size);
        }
    }

    fn enqueue_one(&mut self, t: f64, size: f64) {
        let factor = self.config.lifecycle.deadline_factor;
        let arrival_ms = t.max(self.now);
        let deadline_ms = factor.map_or(f64::INFINITY, |f| {
            arrival_ms + f * self.config.latency_bound_ms
        });
        let req = self.requests.push_sized(arrival_ms, deadline_ms, size);
        self.life_admitted += 1;
        self.push(arrival_ms, EventKind::Arrival { req });
        if deadline_ms.is_finite() {
            self.push(deadline_ms, EventKind::Deadline { req });
        }
        if self.recording() {
            self.obs_at(arrival_ms, ObsEvent::ReqEnqueue { req, deadline_ms });
        }
    }

    fn push(&mut self, t: f64, kind: EventKind) {
        self.events.push(t, kind);
    }

    /// Process all events up to (and including) time `t`.
    pub fn advance_to(&mut self, t: f64) {
        while let Some(et) = self.events.peek_time() {
            if et > t {
                break;
            }
            let (et, _, kind) = self.events.pop().expect("peeked");
            if et < self.now - 1e-9 {
                self.audit_clock_regressions += 1;
            }
            self.now = self.now.max(et);
            self.handle(kind);
        }
        self.now = self.now.max(t);
    }

    /// Run until the event queue drains (all enqueued requests complete),
    /// then return the absolute completion time.
    pub fn drain(&mut self) -> f64 {
        while let Some((et, _, kind)) = self.events.pop() {
            if et < self.now - 1e-9 {
                self.audit_clock_regressions += 1;
            }
            self.now = self.now.max(et);
            self.handle(kind);
        }
        self.now
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::Arrival { req } => {
                // A request cancelled before its arrival event fired (node
                // drain between enqueue and arrival) never enters.
                if self.requests.is_settled(req) {
                    return;
                }
                self.arrived += 1;
                self.segment_arrived += 1;
                if self.last_arrival_ms >= 0.0 {
                    let interval = (self.now - self.last_arrival_ms).max(0.01);
                    self.arrival_rate = 0.9 * self.arrival_rate + 0.1 / interval;
                }
                self.last_arrival_ms = self.now;
                for source in self.graph.sources() {
                    self.push(
                        self.now,
                        EventKind::Dispatch {
                            req,
                            kernel: source,
                        },
                    );
                }
            }
            EventKind::Dispatch { req, kernel } => {
                // The request is already settled (hedge twin finished
                // the stage, or a terminal transition happened while
                // this dispatch was in flight).
                if self.requests.is_settled(req) || self.requests.done(req, kernel.0) {
                    return;
                }
                // Doomed work is cancelled at dispatch instead of
                // queued: a stage with no remaining budget cannot
                // produce an in-bound completion.
                if self.now >= self.requests.deadline_ms(req) {
                    self.abort_request(req, Outcome::TimedOut);
                    return;
                }
                let size = self.requests.size(req);
                // Snapshot the hedge delay before try_start records this
                // stage's own projected latency into the window — a slow
                // primary must not inflate its own hedge delay.
                let hedge_delay = self.hedge_delay_ms(kernel);
                match self.choose_dispatch(req, kernel, None) {
                    Some((dev, alt, est_ms)) => {
                        let item = WorkItem {
                            req,
                            kernel,
                            ready_ms: self.now,
                            est_ms,
                            alt,
                            hedge: false,
                        };
                        self.devices[dev].queue.push_back(item);
                        if self.recording() {
                            let attempt = self.requests.attempt(req, kernel.0);
                            self.obs(ObsEvent::StageDispatch {
                                req,
                                kernel: kernel.0,
                                device: dev,
                                attempt,
                                hedge: false,
                            });
                            if alt != 0 {
                                let imp = self.impl_of(kernel, alt);
                                self.obs(ObsEvent::DynamicChoice {
                                    req,
                                    kernel: kernel.0,
                                    device: dev,
                                    alt,
                                    impl_index: imp.impl_index,
                                });
                            }
                        }
                        self.try_start(dev);
                        if let Some(delay) = hedge_delay {
                            self.maybe_schedule_hedge(req, kernel, delay);
                        }
                    }
                    // Every device of the required kind is down: park the
                    // work until a re-plan or a recovery.
                    None => {
                        let imp = *self.policy.of(kernel);
                        let est_ms = imp.service_ms * poly_device::size_scale(imp.kind, size);
                        self.stranded.push(WorkItem {
                            req,
                            kernel,
                            ready_ms: self.now,
                            est_ms,
                            alt: 0,
                            hedge: false,
                        });
                        if self.recording() {
                            self.obs(ObsEvent::StageStranded {
                                req,
                                kernel: kernel.0,
                            });
                        }
                    }
                }
            }
            EventKind::DeviceFree { dev } => {
                if self.devices[dev].healthy && self.devices[dev].busy_until <= self.now + 1e-12 {
                    self.devices[dev].executing = false;
                    self.try_start(dev);
                    // Still idle after draining its own queue: poach from
                    // the deepest compatible backlog (dynamic mode only).
                    if !self.devices[dev].executing {
                        self.try_steal(dev);
                    }
                }
            }
            EventKind::Complete {
                req,
                kernel,
                attempt,
                hedge,
            } => self.complete(req, kernel, attempt, hedge),
            EventKind::Fault { idx } => self.apply_fault(idx),
            EventKind::Deadline { req } => {
                if !self.requests.is_settled(req) {
                    self.abort_request(req, Outcome::TimedOut);
                }
            }
            EventKind::HedgeFire {
                req,
                kernel,
                attempt,
            } => self.hedge_fire(req, kernel, attempt),
        }
    }

    /// Schedule a hedge check for the stage just dispatched. The caller
    /// sampled `delay` from the latency window *before* the stage
    /// started, so the quantile reflects its peers, not itself.
    fn maybe_schedule_hedge(&mut self, req: usize, kernel: KernelId, delay: f64) {
        if self.requests.hedged(req, kernel.0) {
            return; // one hedge per stage
        }
        let attempt = self.requests.attempt(req, kernel.0);
        let at = self.now + delay;
        // Never hedge past the deadline: the copy could not win in time.
        if at >= self.requests.deadline_ms(req) {
            return;
        }
        self.push(
            at,
            EventKind::HedgeFire {
                req,
                kernel,
                attempt,
            },
        );
    }

    /// The current hedge delay for `kernel`: the configured quantile over
    /// its rolling stage-latency window, floored at `min_delay_ms`.
    /// `None` while hedging is disabled or the window is cold.
    fn hedge_delay_ms(&mut self, kernel: KernelId) -> Option<f64> {
        let h = self.config.lifecycle.hedge?;
        let w = &self.hedge_window[kernel.0];
        if w.len() < h.min_samples.max(1) {
            return None;
        }
        // Same nearest-rank selection as `hedge_delay_from`, but over the
        // reusable scratch buffer instead of a fresh sorted copy.
        let mut scratch = std::mem::take(&mut self.hedge_scratch);
        scratch.clear();
        scratch.extend(w.iter().copied());
        scratch.sort_by(f64::total_cmp);
        let n = scratch.len();
        let rank = ((h.quantile * n as f64).ceil() as usize).clamp(1, n) - 1;
        let delay = scratch[rank].max(h.min_delay_ms);
        self.hedge_scratch = scratch;
        Some(delay)
    }

    /// Fire the hedge for a stage that is still outstanding: queue a
    /// duplicate copy on a device other than the one holding the primary.
    /// First completion wins (the `done` flag makes the duplicate safe);
    /// the loser is cancelled and its booked busy energy refunded.
    fn hedge_fire(&mut self, req: usize, kernel: KernelId, attempt: u32) {
        let now = self.now;
        let k = kernel.0;
        if self.requests.is_settled(req)
            || self.requests.done(req, k)
            || self.requests.attempt(req, k) != attempt
            || self.requests.hedged(req, k)
            || now >= self.requests.deadline_ms(req)
        {
            return;
        }
        // Locate the device holding the primary copy (queued or in
        // flight); a stranded primary has nothing to race against.
        let holder = self.devices.iter().position(|d| {
            d.queue
                .iter()
                .any(|it| it.req == req && it.kernel == kernel)
                || d.inflight.iter().any(|e| {
                    e.item.req == req
                        && e.item.kernel == kernel
                        && e.attempt == attempt
                        && e.completion_ms > now + 1e-12
                })
        });
        let Some(holder) = holder else { return };
        let Some((alt_dev, alt, est_ms)) = self.choose_dispatch(req, kernel, Some(holder)) else {
            return;
        };
        // A hedge only helps when the copy can start ahead of the queued
        // primary. Duplicating into a device that is itself backlogged
        // amplifies load exactly when the system can least afford it — a
        // synchronized burst would hedge every request at once, double
        // every queue, and starve both copies past the deadline.
        let alt_ready = {
            let d = &self.devices[alt_dev];
            d.queue.is_empty() && d.busy_until.max(now) < self.requests.deadline_ms(req)
        };
        if !alt_ready {
            return;
        }
        self.requests.set_hedged(req, k);
        self.retry_stats.hedges_fired += 1;
        self.devices[alt_dev].queue.push_back(WorkItem {
            req,
            kernel,
            ready_ms: now,
            est_ms,
            alt,
            hedge: true,
        });
        if self.recording() {
            self.obs(ObsEvent::HedgeFired {
                req,
                kernel: k,
                device: alt_dev,
            });
        }
        self.try_start(alt_dev);
    }

    /// Device selection for one implementation: affinity-with-spill. Each
    /// kernel has a *home* device among the implementation's platform
    /// (stable hash), which keeps GPU batches of the same kernel together
    /// and avoids convoy effects from interleaving kernel types; heavily
    /// loaded homes spill to the least loaded peer. FPGA devices loaded
    /// with a different bitstream are additionally charged the
    /// reconfiguration time. Returns the winning device together with the
    /// load score it won on (the dynamic chooser compares these across
    /// alternates), or `None` when every device of the required kind is
    /// currently failed (the caller strands the work). `exclude` removes
    /// one device from consideration (hedged dispatch must not double
    /// down on the device holding the primary copy). With `require_kind`,
    /// an outright-missing platform is a panic — a *plan* targeting an
    /// absent platform is a planning bug, not a runtime fault; alternate
    /// probes pass `false` because an alternate's platform may
    /// legitimately be absent from this node's pool.
    fn choose_device_for(
        &self,
        imp: &KernelImpl,
        exclude: Option<usize>,
        require_kind: bool,
    ) -> Option<(usize, f64)> {
        let kernel = imp.kernel;
        // Pass 1 (allocation-free: the peer set is characterized by
        // counters instead of materialized): count devices of the kind,
        // healthy non-excluded peers, and — for FPGAs — peers already
        // configured for this kernel and whether all of those are
        // backlogged.
        let mut any_of_kind = false;
        let mut n_peers = 0usize;
        let mut n_matching = 0usize;
        let mut all_backlogged = true;
        for (i, d) in self.devices.iter().enumerate() {
            if d.kind != imp.kind {
                continue;
            }
            any_of_kind = true;
            if !d.healthy || Some(i) == exclude {
                continue;
            }
            n_peers += 1;
            if imp.kind == DeviceKind::Fpga && d.loaded == Some((kernel, imp.impl_index)) {
                n_matching += 1;
                if d.queue.len() < 3 {
                    all_backlogged = false;
                }
            }
        }
        if !any_of_kind {
            assert!(
                !require_kind,
                "no device of kind {} in pool for kernel {kernel}",
                imp.kind
            );
            return None;
        }
        if n_peers == 0 {
            return None;
        }
        // FPGA dispatch is bitstream-sticky: transient queue pressure must
        // not trigger reconfiguration storms (each swap poisons another
        // kernel's home), so only devices already configured for this
        // kernel are eligible — unless none exists (fresh policy), in
        // which case any peer may be reconfigured once. Expansion
        // hysteresis: only consider reconfiguring an additional device
        // when every configured device already has a sustained backlog.
        let restrict = imp.kind == DeviceKind::Fpga && n_matching > 0 && !all_backlogged;
        let eligible = |i: usize, d: &DeviceState| {
            d.kind == imp.kind
                && d.healthy
                && Some(i) != exclude
                && (!restrict || d.loaded == Some((kernel, imp.impl_index)))
        };
        // Pass 2: the home device — the (kernel mod peers)-th eligible
        // device in index order, same as indexing the former peers Vec.
        let n_eligible = if restrict { n_matching } else { n_peers };
        let home_pos = kernel.0 % n_eligible;
        let mut home = usize::MAX;
        let mut pos = 0usize;
        for (i, d) in self.devices.iter().enumerate() {
            if !eligible(i, d) {
                continue;
            }
            if pos == home_pos {
                home = i;
                break;
            }
            pos += 1;
        }
        // Pass 3: least-loaded eligible device (strict-less, first min).
        let mut best: Option<(f64, usize)> = None;
        for (i, d) in self.devices.iter().enumerate() {
            if !eligible(i, d) {
                continue;
            }
            // Price the backlog at each queued entry's own expected
            // service time (mixed-cost queues would otherwise be priced
            // uniformly at *this* candidate's service time, under- or
            // over-stating the wait whenever the queue holds other
            // kernels or other sizes). A derated (throttled) device
            // works through its backlog `derate`× slower, so weight the
            // sum accordingly.
            let queued_ms: f64 = d.queue.iter().map(|it| it.est_ms).sum();
            let mut score = d.busy_until.max(self.now) + queued_ms * d.derate;
            if i != home && d.kind == DeviceKind::Gpu {
                // GPU spill only pays off when the home is congested by
                // more than one average execution (batch locality); FPGA
                // spill cost is the reconfiguration term below.
                score += imp.latency_ms;
            }
            if d.kind == DeviceKind::Fpga
                && d.loaded.is_some()
                && d.loaded != Some((kernel, imp.impl_index))
            {
                score += d.reconfig_ms;
            }
            if best.is_none_or(|(bs, _)| score < bs) {
                best = Some((score, i));
            }
        }
        Some(best.expect("non-empty peers")).map(|(s, i)| (i, s))
    }

    /// Resolve the implementation a queued entry was dispatched under:
    /// alternate `alt` of the policy's top-k list for `kernel`, falling
    /// back to the primary when a re-plan shrank the list underneath an
    /// already-queued entry.
    fn impl_of(&self, kernel: KernelId, alt: u8) -> KernelImpl {
        let alts = self.policy.alts_of(kernel);
        alts.get(alt as usize).copied().unwrap_or(alts[0])
    }

    /// Dispatch-time device/implementation choice for one request of
    /// relative input `size`: returns `(device, alternate, expected
    /// occupancy ms)`.
    ///
    /// With the dynamic layer off (no [`DynamicDispatch`] config or no
    /// alternates attached to the policy) this reduces exactly to the
    /// static plan: the primary implementation on the device
    /// `choose_device_for` picks.
    ///
    /// With it on, the chooser is *deadline-driven*: the primary is the
    /// interval plan's power-optimal pick, so it stays in force whenever
    /// this request's projected completion — queue score plus size-scaled
    /// execution plus the downstream critical path at this request's size
    /// — still meets the request's QoS target. Only a request the static
    /// plan is about to sink (an oversized input, or a burst victim
    /// behind a deep backlog) is repriced across the top-k alternates,
    /// and it escapes only to an alternate that (a) needs no FPGA
    /// reconfiguration — bitstream swaps poison a loaded kernel's home
    /// and storm under exactly the burst pressure that triggers escapes —
    /// and (b) is itself projected to *make* the target. Among saving
    /// alternates the cheapest by per-item active energy wins (ties keep
    /// the earliest alternate, for determinism): rescue is an exception
    /// path and should cost as little power as possible. A doomed request
    /// that no alternate can save stays on the power-optimal primary
    /// rather than burning a fast implementation's energy on a lost
    /// cause.
    fn choose_dispatch(
        &mut self,
        req: usize,
        kernel: KernelId,
        exclude: Option<usize>,
    ) -> Option<(usize, u8, f64)> {
        let size = self.requests.size(req);
        let dynamic = self.config.dynamic.is_some() && self.policy.has_alternates();
        let primary = *self.policy.of(kernel);
        let primary_scale = poly_device::size_scale(primary.kind, size);
        let primary_est = primary.service_ms * primary_scale;
        let primary_pick = self.choose_device_for(&primary, exclude, true);
        if !dynamic {
            return primary_pick.map(|(dev, _)| (dev, 0, primary_est));
        }
        // Absolute QoS target, and the downstream critical path (rescaled
        // to this request's size) that must still fit after this stage.
        let target = self.requests.arrival_ms(req) + self.config.latency_bound_ms;
        let margin = self.downstream_margin(kernel, size);
        if let Some((dev, score)) = primary_pick {
            let projected = score + primary.latency_single_ms * primary_scale;
            if projected + margin <= target {
                return Some((dev, 0, primary_est));
            }
        }
        // (energy, projected completion, device, alternate, occupancy).
        let mut rescue: Option<(f64, f64, usize, u8, f64)> = None;
        for (alt, imp) in self.policy.alts_of(kernel).iter().enumerate().skip(1) {
            // Escapes are FPGA-lane-only. Every empirical variant of
            // GPU-targeted rescue lost: at high load the lone GPU *is*
            // the plan (k0/k3 of every request funnel through it), and
            // even at low load escapes fire during exactly the bursts
            // that precede plan escalation, so the "parked" GPU they
            // pile onto is about to become the bottleneck.
            if imp.kind != DeviceKind::Fpga || !self.fpga_loaded(kernel, imp.impl_index) {
                continue;
            }
            let scale = poly_device::size_scale(imp.kind, size);
            // The primary kept the missing-platform panic above (a plan
            // that targets an absent platform is a planning bug);
            // alternates on absent platforms are simply skipped.
            let Some((dev, score)) = self.choose_device_for(imp, exclude, false) else {
                continue;
            };
            // Strict residency: the escape runs only on a device already
            // holding this exact bitstream. `choose_device_for` may spill
            // to an unconfigured peer when the lane is backlogged; taking
            // that pick would reconfigure a device mid-burst (poisoning
            // whatever home it had) — the one storm the lane design
            // exists to avoid. A full lane means no escape this time.
            if self.devices[dev].loaded != Some((kernel, imp.impl_index)) {
                continue;
            }
            let projected = score + imp.latency_single_ms * scale;
            if projected + margin > target {
                continue;
            }
            let energy = imp.latency_single_ms * scale * imp.active_power_w;
            if rescue.is_none_or(|(e, p, ..)| (energy, projected) < (e, p)) {
                let alt = u8::try_from(alt).unwrap_or(u8::MAX);
                rescue = Some((energy, projected, dev, alt, imp.service_ms * scale));
            }
        }
        if let Some((_, _, dev, alt, est_ms)) = rescue {
            return Some((dev, alt, est_ms));
        }
        // No feasible rescue. If the primary cannot make the target
        // either, the request is doomed — it will violate no matter
        // where it runs. A doomed request owes the system two things:
        // cost as little energy as possible, and get out of the way of
        // requests that can still be saved. Both point the same
        // direction: *shed* the stage to a resident FPGA alternate
        // whenever that is strictly cheaper per item than the primary —
        // which in practice moves a doomed request's GPU stages
        // (hundreds of watts on the plan's bottleneck device) onto an
        // idle leftover bitstream at tens of watts, freeing the GPU for
        // requests with live deadlines. Feasibility is deliberately not
        // checked: the request misses either way, and slower-but-cheaper
        // is exactly the right trade for a lost cause.
        let doomed = primary_pick.is_none_or(|(_, score)| {
            score + primary.latency_single_ms * primary_scale + margin > target
        });
        if doomed {
            let primary_energy = primary.latency_single_ms * primary_scale * primary.active_power_w;
            // (energy, device, alternate, occupancy).
            let mut shed: Option<(f64, usize, u8, f64)> = None;
            for (alt, imp) in self.policy.alts_of(kernel).iter().enumerate().skip(1) {
                if imp.kind != DeviceKind::Fpga || !self.fpga_loaded(kernel, imp.impl_index) {
                    continue;
                }
                let scale = poly_device::size_scale(imp.kind, size);
                let energy = imp.latency_single_ms * scale * imp.active_power_w;
                if energy >= primary_energy {
                    continue;
                }
                let Some((dev, _)) = self.choose_device_for(imp, exclude, false) else {
                    continue;
                };
                if self.devices[dev].loaded != Some((kernel, imp.impl_index)) {
                    continue;
                }
                if shed.is_none_or(|(e, ..)| energy < e) {
                    let alt = u8::try_from(alt).unwrap_or(u8::MAX);
                    shed = Some((energy, dev, alt, imp.service_ms * scale));
                }
            }
            if let Some((_, dev, alt, est_ms)) = shed {
                return Some((dev, alt, est_ms));
            }
        }
        primary_pick.map(|(dev, _)| (dev, 0, primary_est))
    }

    /// Whether any healthy FPGA currently holds the `(kernel,
    /// impl_index)` bitstream. Dynamic escapes only target already-loaded
    /// bitstreams — an escape must never trigger a reconfiguration.
    fn fpga_loaded(&self, kernel: KernelId, impl_index: usize) -> bool {
        self.devices
            .iter()
            .any(|d| d.healthy && d.loaded == Some((kernel, impl_index)))
    }

    /// Work stealing (dynamic mode only): an idle device poaches the
    /// *youngest* entry from the deepest compatible backlog. Steals are
    /// *same-implementation only* — the thief must be able to run the
    /// entry exactly as priced (same platform; for FPGAs, the bitstream
    /// already loaded), so a steal is a pure queue migration: identical
    /// execution and energy, strictly less waiting. Cross-platform
    /// steals are deliberately excluded — re-pricing a queued entry onto
    /// the other platform's alternate either pays a reconfiguration or
    /// drags work onto the plan's scarce fast device, both of which
    /// showed up as net losses under burst pressure. Stealing the queue
    /// tail (not the head) preserves the victim's batch currently
    /// forming at the front.
    fn try_steal(&mut self, dev: usize) {
        let steal = matches!(self.config.dynamic, Some(dc) if dc.steal);
        if !steal || !self.policy.has_alternates() {
            return;
        }
        let thief_kind = self.devices[dev].kind;
        let thief_loaded = self.devices[dev].loaded;
        if !self.devices[dev].healthy
            || self.devices[dev].executing
            || !self.devices[dev].queue.is_empty()
        {
            return;
        }
        // Deepest victim with at least two waiting entries whose tail can
        // run on the thief (strict-greater, first max: deterministic).
        let mut best: Option<(usize, usize)> = None;
        for (v, d) in self.devices.iter().enumerate() {
            if v == dev || d.queue.len() < 2 {
                continue;
            }
            let Some(item) = d.queue.back() else { continue };
            if item.hedge {
                continue; // hedge copies are placement-pinned by design
            }
            let imp = self.impl_of(item.kernel, item.alt);
            let movable = imp.kind == thief_kind
                && (thief_kind != DeviceKind::Fpga
                    || thief_loaded == Some((item.kernel, imp.impl_index)));
            if !movable {
                continue;
            }
            if best.is_none_or(|(bl, _)| d.queue.len() > bl) {
                best = Some((d.queue.len(), v));
            }
        }
        let Some((_, victim)) = best else {
            return;
        };
        let item = self.devices[victim]
            .queue
            .pop_back()
            .expect("victim queue checked non-empty");
        self.devices[dev].queue.push_back(item);
        self.retry_stats.steals += 1;
        if self.recording() {
            self.obs(ObsEvent::WorkSteal {
                req: item.req,
                kernel: item.kernel.0,
                from: victim,
                to: dev,
            });
        }
        self.try_start(dev);
    }

    /// Start the next batch on device `dev` if it is healthy, idle, and
    /// has work.
    fn try_start(&mut self, dev: usize) {
        let now = self.now;
        if !self.devices[dev].healthy {
            return;
        }
        if self.devices[dev].executing && self.devices[dev].busy_until > now + 1e-12 {
            return;
        }
        // Drop completed entries from the in-flight book before committing
        // to more work (lazy pruning keeps completion O(1)).
        self.devices[dev]
            .inflight
            .retain(|e| e.completion_ms > now + 1e-12);
        let Some(front) = self.devices[dev].queue.front().copied() else {
            self.devices[dev].executing = false;
            return;
        };
        let imp: KernelImpl = self.impl_of(front.kernel, front.alt);

        // Deliberate batch formation (DjiNN-style): hold a partial GPU
        // batch open while (a) the oldest request's slack still allows it
        // and (b) the current arrival rate makes further same-kernel work
        // likely within that slack. At light load (b) fails and requests
        // start immediately, keeping the low-load tail flat.
        let budget = self.wait_budget.get(front.kernel.0).copied().unwrap_or(0.0);
        if budget > 0.0 {
            let same: u32 = self.devices[dev]
                .queue
                .iter()
                .filter(|i| i.kernel == front.kernel)
                .count()
                .try_into()
                .unwrap_or(u32::MAX);
            let deadline = self.requests.arrival_ms(front.req) + budget;
            // Queue gate: only hold the batch open when a partial batch is
            // already forming (the device is trending throughput-bound);
            // a lone request at moderate load starts immediately.
            if same >= 2 && same < imp.batch && deadline > now + 1e-9 && self.arrival_rate > 0.0 {
                let kind = self.devices[dev].kind;
                let peers = self
                    .devices
                    .iter()
                    .filter(|x| x.kind == kind)
                    .count()
                    .max(1) as f64;
                // Wait only when the batch is expected to fill within the
                // remaining slack; otherwise launch the partial batch now.
                // The rate EWMA only updates on arrivals, so after a burst
                // it stays frozen at its peak and predicts imminent fill
                // forever; the gap since the last arrival is evidence too,
                // and once it exceeds the EWMA's own expected inter-arrival
                // the gap is the better estimate.
                let gap = (now - self.last_arrival_ms).max(0.01);
                let rate = self.arrival_rate.min(1.0 / gap);
                let fill_ms = f64::from(imp.batch - same) / (rate / peers);
                if now + fill_ms <= deadline {
                    let wake = (now + 1.2 * fill_ms).min(deadline);
                    self.devices[dev].executing = false;
                    self.push(wake, EventKind::DeviceFree { dev });
                    return;
                }
            }
        }
        // Gather up to `batch` queued items of the same kernel (GPU
        // batching); preserve the order of everything else. Both buffers
        // are engine-owned scratch, so steady-state batch formation
        // allocates nothing (the drained queue becomes the next scratch).
        let mut batch = std::mem::take(&mut self.batch_scratch);
        let mut rest = std::mem::take(&mut self.rest_scratch);
        batch.clear();
        rest.clear();
        let d = &mut self.devices[dev];
        while let Some(item) = d.queue.pop_front() {
            // Batches are homogeneous in (kernel, alternate): entries
            // dispatched under different implementations must not share
            // a launch.
            if item.kernel == front.kernel
                && item.alt == front.alt
                && batch.len() < imp.batch as usize
            {
                batch.push(item);
            } else {
                rest.push_back(item);
            }
        }
        self.rest_scratch = std::mem::replace(&mut d.queue, rest);

        let mut start = now;
        if d.kind == DeviceKind::Fpga && d.loaded != Some((front.kernel, imp.impl_index)) {
            if d.loaded.is_some() {
                d.reconfigs += 1;
            }
            start += d.reconfig_ms;
            d.loaded = Some((front.kernel, imp.impl_index));
        }

        let n = u32::try_from(batch.len()).unwrap_or(u32::MAX);
        {
            let ks = &mut self.kernel_stats[front.kernel.0];
            ks.executions += 1;
            ks.requests += batch.len();
            for item in &batch {
                ks.queue_wait_ms += (start - item.ready_ms).max(0.0);
            }
        }
        // Size scaling: the batch runs as long as its mean scale factor
        // (GPU lanes run the same launch; the widest input dominates the
        // mean it contributes to), and an FPGA pipeline streams each
        // request for its own scaled service time. At all-nominal sizes
        // every factor is exactly 1.0, the sum is exactly `n`, and both
        // expressions are bit-identical to the unscaled model.
        let scale_sum: f64 = batch
            .iter()
            .map(|it| poly_device::size_scale(imp.kind, self.requests.size(it.req)))
            .sum();
        let scale_mean = scale_sum / f64::from(n.max(1));
        let exec = imp.exec_ms(n) * scale_mean * d.derate;
        let completion = start + exec;
        let occupancy = match imp.kind {
            DeviceKind::Gpu => imp.exec_ms(n) * scale_mean,
            DeviceKind::Fpga => imp.service_ms * scale_sum,
        };
        let busy_until = start + occupancy * d.derate;
        // Pipelined streaming: floor this launch's completion on any
        // still-arriving producer tiles, charge producer-side stalls, and
        // dispatch DAG successors on the first tile instead of the last.
        // Behind `enabled()` so the barrier default stays bit-identical.
        let (completion, busy_until) = if self.config.pipeline.enabled() {
            self.pipeline_stream(
                &batch,
                front.kernel,
                imp,
                start,
                exec,
                completion,
                busy_until,
            )
        } else {
            (completion, busy_until)
        };
        let d = &mut self.devices[dev];
        if let Some(tl) = &mut self.timeline {
            if tl.len() < 100_000 {
                tl.push(ExecutionRecord {
                    device: dev,
                    kind: d.kind,
                    kernel: front.kernel,
                    impl_index: imp.impl_index,
                    start_ms: now,
                    reconfig_ms: start - now,
                    completion_ms: completion,
                    batch: batch.len(),
                });
            }
        }
        self.kernel_stats[front.kernel.0].busy_ms += busy_until - now;
        d.account_busy(now, busy_until, imp.active_power_w);
        self.booked_busy_mj += imp.active_power_w * (busy_until - now).max(0.0);
        let d = &mut self.devices[dev];
        d.idle_power_w = imp.idle_power_w;
        d.active_power_w = imp.active_power_w;
        d.executing = true;
        d.busy_until = busy_until;

        self.push(busy_until, EventKind::DeviceFree { dev });
        if self.recording() {
            self.obs(ObsEvent::ExecStart {
                device: dev,
                device_kind: match imp.kind {
                    DeviceKind::Gpu => "gpu",
                    DeviceKind::Fpga => "fpga",
                },
                backend: self.config.backend_label,
                kernel: front.kernel.0,
                impl_index: imp.impl_index,
                batch: batch.len(),
                reconfig_ms: start - now,
                busy_ms: busy_until - now,
                exec_ms: exec,
            });
        }
        if let Some(h) = self.config.lifecycle.hedge {
            // Feed the rolling stage-latency window that the hedge delay
            // quantile is computed over (dispatch-to-completion, queueing
            // included — hedges race the whole stage, not just execution).
            let w = &mut self.hedge_window[front.kernel.0];
            for item in &batch {
                if w.len() >= h.window.max(1) {
                    w.pop_front();
                }
                w.push_back(completion - item.ready_ms);
            }
        }
        for &item in &batch {
            let attempt = self.requests.attempt(item.req, item.kernel.0);
            if self.recording() {
                self.obs(ObsEvent::StageStart {
                    req: item.req,
                    kernel: item.kernel.0,
                    device: dev,
                    attempt,
                    hedge: item.hedge,
                    queue_wait_ms: (start - item.ready_ms).max(0.0),
                    service_ms: completion - start,
                });
            }
            self.devices[dev].inflight.push(InflightItem {
                item,
                attempt,
                completion_ms: completion,
            });
            self.push(
                completion,
                EventKind::Complete {
                    req: item.req,
                    kernel: item.kernel,
                    attempt,
                    hedge: item.hedge,
                },
            );
        }
        batch.clear();
        self.batch_scratch = batch;
    }

    /// The streaming half of [`try_start`](Self::try_start), called once
    /// per launch when [`PipelineConfig::enabled`]. Three effects, all on
    /// simulated time only:
    ///
    /// - **Consumer floor** — if any batched request is itself being
    ///   streamed into (a producer dispatched it on a first tile), this
    ///   launch cannot finish before that producer's last tile lands plus
    ///   one of its own tile times; completion and occupancy are floored
    ///   accordingly.
    /// - **Producer stall** — for every DAG successor this launch is the
    ///   last pending predecessor of, the bounded channel gives the
    ///   producer `min(depth, tiles)` credits; a consumer whose per-tile
    ///   time exceeds the producer's backs pressure up, extending the
    ///   producer by `(tiles - credits) * (tc - tp)` (the classic bounded
    ///   -buffer closed form; zero when the channel never fills).
    /// - **Early dispatch** — each such successor stage is dispatched
    ///   just in time to overlap with the remaining tiles (one chunk
    ///   transfer after the first tile, or later if the consumer is fast
    ///   enough to idle-wait otherwise). Its predecessor count is
    ///   consumed *now* and the stage marked streamed, so the producer's
    ///   eventual completion neither re-decrements nor re-dispatches it —
    ///   a killed or hedged producer replays against the same flag.
    ///
    /// Returns the adjusted `(completion, busy_until)`.
    #[allow(clippy::too_many_arguments)]
    fn pipeline_stream(
        &mut self,
        batch: &[WorkItem],
        kernel: KernelId,
        imp: KernelImpl,
        start: f64,
        exec: f64,
        completion: f64,
        busy_until: f64,
    ) -> (f64, f64) {
        let cfg = self.config.pipeline;
        let tiles = f64::from(cfg.tiles);
        let (mut completion, mut busy_until) = (completion, busy_until);

        // Consumer side: wait for the slowest streaming producer's last
        // tile, then one more tile of our own work. `NEG_INFINITY` floors
        // (no streaming producer) never bind.
        let floor = batch
            .iter()
            .map(|it| self.requests.stream_floor(it.req, kernel.0))
            .fold(f64::NEG_INFINITY, f64::max);
        if floor.is_finite() && floor + exec / tiles > completion {
            let delta = floor + exec / tiles - completion;
            completion += delta;
            busy_until += delta;
        }

        // Producer side: stream into successors we are the last pending
        // predecessor of.
        let mut succs = std::mem::take(&mut self.succ_scratch);
        succs.clear();
        succs.extend(self.graph.successors(kernel).map(|e| (e.to, e.bytes)));
        if !succs.is_empty() {
            let credits = f64::from(cfg.depth.min(cfg.tiles));
            let tp = (completion - start) / tiles;
            let mut stall = 0.0f64;
            for &(succ, _) in &succs {
                let eligible = batch.iter().any(|it| {
                    self.requests.remaining_preds(it.req, succ.0) == 1
                        && !self.requests.streamed(it.req, succ.0)
                });
                if eligible {
                    let tc = self.policy.of(succ).latency_single_ms / tiles;
                    stall = stall.max((tiles - credits) * (tc - tp));
                }
            }
            if stall > 0.0 {
                completion += stall;
                busy_until += stall;
            }
            for &(succ, bytes) in &succs {
                let succ_imp = *self.policy.of(succ);
                // Per-tile chunk crossing the platform boundary pays PCIe
                // at chunk granularity; same-kind edges stream for free,
                // like the barrier path's transfer rule.
                let chunk_ms = if succ_imp.kind == imp.kind {
                    0.0
                } else {
                    let chunk =
                        poly_ir::ChannelSpec::new(bytes, cfg.tiles, cfg.depth).chunk_bytes();
                    self.config.pcie.transfer_ms(chunk)
                };
                // Just-in-time start: late enough that the consumer never
                // idles on an empty channel (its estimated run ends one of
                // its tiles after our last tile), but never before our
                // first tile can reach it.
                let jit = start
                    + tp.max(
                        (completion - start) - succ_imp.latency_single_ms * (1.0 - 1.0 / tiles),
                    )
                    + chunk_ms;
                for it in batch {
                    if self.requests.remaining_preds(it.req, succ.0) == 1
                        && !self.requests.streamed(it.req, succ.0)
                    {
                        self.requests.dec_remaining_preds(it.req, succ.0);
                        self.requests.set_streamed(it.req, succ.0);
                        self.requests
                            .set_stream_floor(it.req, succ.0, completion + chunk_ms);
                        self.push(
                            jit,
                            EventKind::Dispatch {
                                req: it.req,
                                kernel: succ,
                            },
                        );
                    }
                }
            }
        }
        succs.clear();
        self.succ_scratch = succs;
        (completion, busy_until)
    }

    fn complete(&mut self, req: usize, kernel: KernelId, attempt: u32, hedge: bool) {
        let now = self.now;
        // The request reached a terminal state (deadline, retry
        // exhaustion, node drain) while this completion was in flight.
        if self.requests.is_settled(req) {
            self.audit_stale += 1;
            return;
        }
        // A stale completion: the execution that scheduled this event
        // was killed by a fail-stop (or invalidated by a cancellation)
        // and the kernel was re-dispatched under a higher attempt
        // number — or the hedge twin already finished this stage.
        if self.requests.done(req, kernel.0) || self.requests.attempt(req, kernel.0) != attempt {
            self.audit_stale += 1;
            return;
        }
        self.requests.set_done(req, kernel.0);
        let kernels_left = self.requests.dec_kernels_left(req);
        let was_hedged = self.requests.hedged(req, kernel.0);
        if was_hedged {
            if hedge {
                self.retry_stats.hedge_wins += 1;
            }
            // First completion wins: cancel the losing copy wherever it is
            // and refund whatever busy time it still held booked.
            self.cancel_duplicates(req, kernel);
        }
        if self.recording() {
            self.obs(ObsEvent::StageComplete {
                req,
                kernel: kernel.0,
            });
        }
        let my_kind = self.policy.of(kernel).kind;
        let mut succs = std::mem::take(&mut self.succ_scratch);
        succs.clear();
        succs.extend(self.graph.successors(kernel).map(|e| (e.to, e.bytes)));
        for &(succ, bytes) in &succs {
            // A streamed successor was dispatched on our first tile and
            // its predecessor count consumed then — completing the last
            // tile must not double-count (or re-dispatch a copy).
            if self.requests.streamed(req, succ.0) {
                continue;
            }
            if self.requests.dec_remaining_preds(req, succ.0) == 0 {
                let succ_kind = self.policy.of(succ).kind;
                let transfer = if succ_kind == my_kind {
                    0.0
                } else {
                    self.config.pcie.transfer_ms(bytes)
                };
                self.push(now + transfer, EventKind::Dispatch { req, kernel: succ });
            }
        }
        succs.clear();
        self.succ_scratch = succs;
        if kernels_left == 0 {
            self.set_terminal(req, Outcome::Completed);
            let latency = now - self.requests.arrival_ms(req);
            Arc::make_mut(&mut self.latencies).push(latency);
            self.segment_latencies.push(latency);
            self.completed += 1;
            self.segment_completed += 1;
            if self.recording() {
                self.obs(ObsEvent::ReqComplete {
                    req,
                    latency_ms: latency,
                });
            }
        }
    }

    /// Move `req` to a terminal outcome, exactly once. A second terminal
    /// transition is counted as an audit violation and ignored.
    fn set_terminal(&mut self, req: usize, outcome: Outcome) {
        if self.requests.is_settled(req) {
            self.audit_double_terminal += 1;
            return;
        }
        self.requests.set_outcome(req, outcome);
        match outcome {
            Outcome::InFlight => unreachable!("terminal transition to InFlight"),
            Outcome::Completed => self.life_completed += 1,
            Outcome::TimedOut => {
                self.life_timed_out += 1;
                self.seg_timeouts += 1;
            }
            Outcome::Failed => {
                self.life_failed += 1;
                self.seg_failed += 1;
            }
            Outcome::Cancelled => self.life_cancelled += 1,
        }
        if self.recording() {
            // `Completed` is reported by the caller as `ReqComplete`
            // (which carries the latency); only the failure outcomes are
            // recorded here.
            match outcome {
                Outcome::TimedOut => self.obs(ObsEvent::ReqTimedOut { req }),
                Outcome::Failed => self.obs(ObsEvent::ReqFailed { req }),
                Outcome::Cancelled => self.obs(ObsEvent::ReqCancelled { req }),
                Outcome::InFlight | Outcome::Completed => {}
            }
        }
    }

    /// Abandon every copy of `req`'s outstanding work — queued, stranded,
    /// or in flight — and settle the request with `outcome`. In-flight
    /// executions are invalidated through the attempt counters (their
    /// scheduled completions go stale) and the busy time a now-empty
    /// batch still held booked is refunded.
    fn abort_request(&mut self, req: usize, outcome: Outcome) {
        let now = self.now;
        let mut touched = std::mem::take(&mut self.touched_scratch);
        touched.clear();
        for (i, d) in self.devices.iter_mut().enumerate() {
            let before = d.queue.len() + d.inflight.len();
            d.queue.retain(|it| it.req != req);
            if before != d.queue.len() + d.inflight.len() {
                touched.push(i);
            }
        }
        self.stranded.retain(|it| it.req != req);
        // Bump every stage's attempt: any completion still scheduled for
        // this request is now stale (belt and braces — the terminal
        // outcome alone already makes them stale).
        self.requests.bump_all_attempts(req);
        for (i, d) in self.devices.iter_mut().enumerate() {
            let before = d.inflight.len();
            d.inflight
                .retain(|e| !(e.item.req == req && e.completion_ms > now + 1e-12));
            if d.inflight.len() != before {
                touched.push(i);
            }
        }
        self.set_terminal(req, outcome);
        for &dev in &touched {
            self.cut_if_idle(dev);
        }
        touched.clear();
        self.touched_scratch = touched;
    }

    /// Remove the losing copies of a hedged stage after its first
    /// completion: queued duplicates are dropped, in-flight duplicates are
    /// invalidated (the `done` flag makes their completions stale), and
    /// devices whose batch just emptied get their booked busy time
    /// refunded.
    fn cancel_duplicates(&mut self, req: usize, kernel: KernelId) {
        let now = self.now;
        let mut touched = std::mem::take(&mut self.touched_scratch);
        touched.clear();
        for (i, d) in self.devices.iter_mut().enumerate() {
            let before = d.queue.len() + d.inflight.len();
            d.queue.retain(|it| !(it.req == req && it.kernel == kernel));
            d.inflight.retain(|e| {
                !(e.item.req == req && e.item.kernel == kernel && e.completion_ms > now + 1e-12)
            });
            if d.queue.len() + d.inflight.len() != before {
                touched.push(i);
            }
        }
        self.stranded
            .retain(|it| !(it.req == req && it.kernel == kernel));
        for &dev in &touched {
            self.cut_if_idle(dev);
        }
        touched.clear();
        self.touched_scratch = touched;
    }

    /// If device `dev` is mid-execution but every work item of its
    /// current batch has been cancelled, cut the execution short: refund
    /// the remaining pre-booked busy energy and free the device now.
    fn cut_if_idle(&mut self, dev: usize) {
        let now = self.now;
        let has_live = {
            let d = &self.devices[dev];
            if !d.healthy || !d.executing || d.busy_until <= now + 1e-12 {
                return;
            }
            d.inflight.iter().any(|e| {
                e.completion_ms > now + 1e-12
                    && !self.requests.is_settled(e.item.req)
                    && !self.requests.done(e.item.req, e.item.kernel.0)
                    && self.requests.attempt(e.item.req, e.item.kernel.0) == e.attempt
            })
        };
        if has_live {
            return;
        }
        let d = &mut self.devices[dev];
        let cut = d.busy_until.min(d.accounted_to_ms) - now;
        if cut > 0.0 {
            let refund = d.active_power_w * cut;
            d.busy_energy_mj -= refund;
            d.busy_ms -= cut;
            d.accounted_to_ms = now;
            self.refunded_busy_mj += refund;
        }
        d.executing = false;
        d.busy_until = now;
        self.push(now, EventKind::DeviceFree { dev });
    }

    /// Discard all statistics gathered so far (latencies, counters, and
    /// energy books) and start a fresh measurement window at the current
    /// simulation time. Queue and device state is preserved — this is how
    /// warmup is excluded from steady-state measurements.
    pub fn reset_accounting(&mut self) {
        for d in &mut self.devices {
            d.account_idle_until(self.now);
            d.busy_energy_mj = 0.0;
            d.idle_energy_mj = 0.0;
            d.busy_ms = 0.0;
        }
        self.stats_since = self.now;
        self.arrived = 0;
        self.completed = 0;
        Arc::make_mut(&mut self.latencies).clear();
        self.segment_latencies.clear();
        self.segment_arrived = 0;
        self.segment_completed = 0;
        for ks in &mut self.kernel_stats {
            *ks = KernelStats::default();
        }
        // Measurement boundaries are also when the settled request prefix
        // is reclaimed: over a long replay the arena stays bounded by the
        // in-flight population instead of growing with the trace.
        self.requests.compact();
    }

    /// Statistics since the last call (the system monitor's view): arrived
    /// and completed counts and the latency distribution of the segment.
    pub fn drain_segment(&mut self) -> (usize, usize, LatencyStats) {
        let stats = LatencyStats::from_samples(std::mem::take(&mut self.segment_latencies));
        let arrived = std::mem::replace(&mut self.segment_arrived, 0);
        let completed = std::mem::replace(&mut self.segment_completed, 0);
        (arrived, completed, stats)
    }

    /// Allocation-free [`drain_segment`](Self::drain_segment): swaps the
    /// segment's raw latency samples into `out` (clearing it first) so an
    /// interval-stepping driver can recycle one buffer per node instead of
    /// building a fresh digest every interval. Returns `(arrived,
    /// completed)`; percentiles come from the slice helpers
    /// ([`quantile_of`](crate::quantile_of) /
    /// [`violations_of`](crate::violations_of)), which match the digest
    /// bit-for-bit.
    pub fn drain_segment_into(&mut self, out: &mut Vec<f64>) -> (usize, usize) {
        out.clear();
        std::mem::swap(out, &mut self.segment_latencies);
        let arrived = std::mem::replace(&mut self.segment_arrived, 0);
        let completed = std::mem::replace(&mut self.segment_completed, 0);
        (arrived, completed)
    }

    /// Total queued work items across devices, plus work stranded by
    /// failures (the monitor's queue-length signal).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.devices.iter().map(|d| d.queue.len()).sum::<usize>() + self.stranded.len()
    }

    /// Schedule the events of `plan` as discrete fault events. Events
    /// scripted before the current time fire immediately (at "now").
    ///
    /// A [`FaultKind::Revoke`] lowers to a [`FaultKind::FailStop`] at
    /// `at_ms + notice_ms`: the engine models only the capacity loss at
    /// the deadline; reacting to the *notice* (draining before the
    /// deadline) is the cluster layer's job.
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        for &event in plan.events() {
            assert!(
                event.device < self.devices.len(),
                "fault targets device {} but the pool has {}",
                event.device,
                self.devices.len()
            );
            let event = match event.kind {
                FaultKind::Revoke { .. } => FaultEvent {
                    at_ms: event.at_ms + event.kind.effect_delay_ms(),
                    device: event.device,
                    kind: FaultKind::FailStop,
                },
                _ => event,
            };
            let idx = self.faults.len();
            self.faults.push(event);
            self.push(event.at_ms.max(self.now), EventKind::Fault { idx });
        }
    }

    /// The pool of currently healthy devices — what the runtime should
    /// re-plan against after a failure.
    #[must_use]
    pub fn available_pool(&self) -> Pool {
        let kinds: Vec<DeviceKind> = self
            .devices
            .iter()
            .filter(|d| d.healthy)
            .map(|d| d.kind)
            .collect();
        Pool::new(&kinds)
    }

    /// Number of currently healthy devices.
    #[must_use]
    pub fn healthy_devices(&self) -> usize {
        self.devices.iter().filter(|d| d.healthy).count()
    }

    /// Fault events applied and work items retried since the last call
    /// (the monitor's fault signal).
    pub fn take_fault_counts(&mut self) -> (usize, usize) {
        (
            std::mem::replace(&mut self.seg_fault_events, 0),
            std::mem::replace(&mut self.seg_retries, 0),
        )
    }

    /// Abandon every request that has not completed yet: clear device
    /// queues and in-flight books, drop stranded work, and mark the
    /// victims finished so their already-scheduled completion events
    /// become stale. Returns how many requests were abandoned — the
    /// traffic a front-end router must redistribute to other nodes when
    /// it drains this one (e.g. after a whole-node fail-stop).
    ///
    /// Scripted fault events stay queued, so a later recovery still
    /// returns the devices to service.
    /// Calling it on an empty or already-drained simulator — including a
    /// second consecutive call — is a deterministic no-op: nothing is
    /// double-counted and no busy energy is refunded twice.
    pub fn cancel_pending(&mut self) -> usize {
        let now = self.now;
        for d in &mut self.devices {
            d.queue.clear();
            d.inflight.clear();
            // A healthy device cut off mid-execution gets its remaining
            // pre-booked busy energy refunded (the work will never
            // finish); a failed device was already refunded at the
            // fail-stop. `executing` guards double refunds: the first
            // call clears it, so a second call skips the block.
            if d.healthy && d.executing && d.busy_until > now + 1e-12 {
                let cut = d.busy_until.min(d.accounted_to_ms) - now;
                if cut > 0.0 {
                    let refund = d.active_power_w * cut;
                    d.busy_energy_mj -= refund;
                    d.busy_ms -= cut;
                    d.accounted_to_ms = now;
                    self.refunded_busy_mj += refund;
                }
                d.executing = false;
                d.busy_until = now;
            }
        }
        self.stranded.clear();
        let mut cancelled = 0;
        for req in self.requests.live_range() {
            if !self.requests.is_settled(req) {
                cancelled += 1;
                // Stale-ify every scheduled completion of the victim.
                self.requests.bump_all_attempts(req);
                self.set_terminal(req, Outcome::Cancelled);
            }
        }
        cancelled
    }

    /// Re-dispatch work stranded by failures (called when a recovery or a
    /// policy change may have made it dispatchable again).
    fn redispatch_stranded(&mut self) {
        let stranded = std::mem::take(&mut self.stranded);
        let now = self.now;
        for item in stranded {
            self.push(
                now,
                EventKind::Dispatch {
                    req: item.req,
                    kernel: item.kernel,
                },
            );
        }
    }

    /// Apply scripted fault `idx` at the current time.
    fn apply_fault(&mut self, idx: usize) {
        let FaultEvent { device, kind, .. } = self.faults[idx];
        let now = self.now;
        match kind {
            FaultKind::FailStop => {
                if !self.devices[device].healthy {
                    return; // already down
                }
                self.fault_failures += 1;
                self.seg_fault_events += 1;
                if self.recording() {
                    self.obs(ObsEvent::Fault {
                        device,
                        kind: "fail-stop",
                    });
                }
                let mut queued_victims: Vec<WorkItem> = Vec::new();
                {
                    let d = &mut self.devices[device];
                    // The busy-energy account was pre-booked to the end of
                    // the running execution; refund the part the failure
                    // cuts off — a dead board draws nothing.
                    if d.executing && d.busy_until > now {
                        let cut = d.busy_until.min(d.accounted_to_ms) - now;
                        if cut > 0.0 {
                            let refund = d.active_power_w * cut;
                            d.busy_energy_mj -= refund;
                            d.busy_ms -= cut;
                            d.accounted_to_ms = now;
                            self.refunded_busy_mj += refund;
                        }
                    }
                    d.account_idle_until(now);
                    d.healthy = false;
                    d.executing = false;
                    d.busy_until = now;
                    d.loaded = None;
                    d.idle_power_w = 0.0;
                    queued_victims.extend(d.queue.drain(..));
                }
                // Kill the in-flight batch: bump each victim's attempt so
                // its scheduled completion becomes stale, then retry it.
                let mut to_retry: Vec<WorkItem> = Vec::new();
                let inflight = std::mem::take(&mut self.devices[device].inflight);
                for entry in inflight {
                    let req = entry.item.req;
                    let k = entry.item.kernel.0;
                    // A settled request never holds a live future
                    // completion (the settling path invalidated it), so
                    // the settled check short-circuits before any
                    // per-kernel state is touched.
                    if entry.completion_ms > now + 1e-12
                        && !self.requests.is_settled(req)
                        && !self.requests.done(req, k)
                        && self.requests.attempt(req, k) == entry.attempt
                    {
                        self.requests.bump_attempt(req, k);
                        to_retry.push(entry.item);
                    }
                }
                match self.config.lifecycle.retry {
                    // Legacy: re-dispatch everything immediately, without
                    // bound; queued victims keep their attempt counter.
                    RetryPolicy::Immediate => {
                        to_retry.extend(queued_victims);
                        self.retry_stats.device_retries += to_retry.len();
                        self.seg_retries += to_retry.len();
                        for item in to_retry {
                            self.push(
                                now,
                                EventKind::Dispatch {
                                    req: item.req,
                                    kernel: item.kernel,
                                },
                            );
                        }
                    }
                    RetryPolicy::Backoff(policy) => {
                        // Queued (never-started) victims also count this
                        // kill against their stage's retry budget, so the
                        // bound is uniform across queue positions.
                        for item in &queued_victims {
                            self.requests.bump_attempt(item.req, item.kernel.0);
                        }
                        to_retry.extend(queued_victims);
                        for item in to_retry {
                            if self.requests.is_settled(item.req) {
                                continue; // settled while the kill ran
                            }
                            let n = self.requests.attempt(item.req, item.kernel.0);
                            if n > policy.max_retries {
                                self.retry_stats.exhausted += 1;
                                self.abort_request(item.req, Outcome::Failed);
                                continue;
                            }
                            self.retry_stats.device_retries += 1;
                            self.seg_retries += 1;
                            let key = ((item.req as u64) << 20) | item.kernel.0 as u64;
                            let delay = policy.delay_ms(n, key);
                            self.push(
                                now + delay,
                                EventKind::Dispatch {
                                    req: item.req,
                                    kernel: item.kernel,
                                },
                            );
                        }
                    }
                }
            }
            FaultKind::Slowdown { factor } => {
                let d = &mut self.devices[device];
                if d.healthy {
                    d.derate = factor.max(1.0);
                    self.seg_fault_events += 1;
                    if self.recording() {
                        self.obs(ObsEvent::Fault {
                            device,
                            kind: "slowdown",
                        });
                    }
                }
            }
            FaultKind::Recover => {
                let was_down = !self.devices[device].healthy;
                {
                    let d = &mut self.devices[device];
                    d.derate = 1.0;
                    if was_down {
                        d.healthy = true;
                        d.executing = false;
                        d.busy_until = now;
                        // The board rejoins cold at its configured idle
                        // power; energy accounting resumes from now.
                        d.accounted_to_ms = d.accounted_to_ms.max(now);
                        d.idle_power_w = match d.kind {
                            DeviceKind::Gpu => self.config.gpu_idle_w,
                            DeviceKind::Fpga => self.config.fpga_idle_w,
                        };
                    }
                }
                if was_down {
                    self.seg_fault_events += 1;
                    self.apply_idle_floors();
                    if self.recording() {
                        self.obs(ObsEvent::Fault {
                            device,
                            kind: "recover",
                        });
                    }
                }
                self.redispatch_stranded();
                self.push(now, EventKind::DeviceFree { dev: device });
            }
            // Revocations are lowered to FailStop at injection time
            // (`inject_faults`); one can never reach the queue.
            FaultKind::Revoke { .. } => unreachable!("Revoke is lowered at injection"),
        }
    }

    /// Close the books at time `t` (≥ now) and produce the report.
    /// The simulator can continue afterwards, but energy accounting is
    /// simplest when `finish` is called once at the end.
    pub fn finish(&mut self, t: f64) -> SimReport {
        self.advance_to(t);
        let end = t.max(self.now);
        let duration_ms = (end - self.stats_since).max(1e-9);
        let mut energy_mj = 0.0;
        let mut devices = Vec::with_capacity(self.devices.len());
        for d in &mut self.devices {
            let e = d.finish(end);
            energy_mj += e;
            devices.push(DeviceStats {
                kind: d.kind,
                utilization: d.utilization(duration_ms),
                energy_j: e / 1000.0,
                reconfigs: d.reconfigs,
            });
        }
        let latency = LatencyStats::from_shared(&self.latencies, &mut self.lat_scratch);
        let qos_violation_ratio = latency.violation_ratio(self.config.latency_bound_ms);
        SimReport {
            duration_ms,
            arrived: self.arrived,
            completed: self.completed,
            qos_violation_ratio,
            avg_power_w: if duration_ms > 0.0 {
                energy_mj / duration_ms
            } else {
                0.0
            },
            energy_j: energy_mj / 1000.0,
            throughput_rps: if duration_ms > 0.0 {
                self.completed as f64 * 1000.0 / duration_ms
            } else {
                0.0
            },
            latency,
            devices,
            kernels: self.kernel_stats.clone(),
            device_failures: self.fault_failures,
            retry: self.retry_stats,
            timed_out: self.life_timed_out,
        }
    }

    /// Requests timed out and failed since the last call (the monitor's
    /// lifecycle signal).
    pub fn take_lifecycle_counts(&mut self) -> (usize, usize) {
        (
            std::mem::replace(&mut self.seg_timeouts, 0),
            std::mem::replace(&mut self.seg_failed, 0),
        )
    }

    /// Milliseconds of deadline budget request `req` has left (∞ when
    /// deadlines are disabled, 0 when the deadline has passed).
    ///
    /// # Panics
    /// Panics if `req` was never enqueued, or if it settled before the
    /// last [`reset_accounting`](Self::reset_accounting) (settled request
    /// state is compacted away at measurement boundaries).
    #[must_use]
    pub fn remaining_budget_ms(&self, req: usize) -> f64 {
        (self.requests.deadline_ms(req) - self.now).max(0.0)
    }

    /// Cumulative re-issue ledger since construction (also embedded in
    /// [`SimReport`] by [`finish`](Self::finish)).
    #[must_use]
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// Lifetime conservation accounting for invariant checking — see
    /// [`AuditReport`]. Counters are never reset (they survive
    /// [`reset_accounting`](Self::reset_accounting)), so the report covers
    /// the whole life of the simulator.
    #[must_use]
    pub fn audit(&self) -> AuditReport {
        AuditReport {
            admitted: self.life_admitted,
            completed: self.life_completed,
            timed_out: self.life_timed_out,
            failed: self.life_failed,
            cancelled: self.life_cancelled,
            pending: self.requests.pending(),
            stale_completions: self.audit_stale,
            double_terminal: self.audit_double_terminal,
            clock_regressions: self.audit_clock_regressions,
            booked_busy_mj: self.booked_busy_mj,
            refunded_busy_mj: self.refunded_busy_mj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::{BackoffPolicy, HedgeConfig};
    use poly_ir::{KernelBuilder, KernelGraphBuilder, OpFunc, PatternKind, Shape};

    fn graph2() -> KernelGraph {
        let k = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap();
        KernelGraphBuilder::new("app")
            .kernel(k.clone())
            .kernel(k.with_name("b"))
            .edge("a", "b", 1 << 20)
            .build()
            .unwrap()
    }

    fn gpu_impl(kernel: usize, latency: f64, batch: u32) -> KernelImpl {
        KernelImpl {
            kernel: KernelId(kernel),
            kind: DeviceKind::Gpu,
            impl_index: 0,
            latency_ms: latency,
            latency_single_ms: latency / f64::from(batch.max(1)) * 1.5,
            service_ms: latency / f64::from(batch.max(1)),
            batch,
            active_power_w: 200.0,
            idle_power_w: 40.0,
        }
    }

    fn fpga_impl(kernel: usize, latency: f64) -> KernelImpl {
        KernelImpl {
            kernel: KernelId(kernel),
            kind: DeviceKind::Fpga,
            impl_index: 0,
            latency_ms: latency,
            latency_single_ms: latency,
            service_ms: latency * 0.9,
            batch: 1,
            active_power_w: 25.0,
            idle_power_w: 5.0,
        }
    }

    fn sim(policy: Vec<KernelImpl>, pool: Pool) -> Simulator {
        Simulator::new(
            graph2(),
            &pool,
            Policy::from_impls(policy),
            SimConfig::default(),
        )
    }

    #[test]
    fn single_request_latency_is_sum_plus_transfer() {
        let mut s = sim(
            vec![gpu_impl(0, 10.0, 1), fpga_impl(1, 20.0)],
            Pool::heterogeneous(1, 1),
        );
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1);
        // 10 (a on GPU) + pcie(1 MiB) + 20 (b; bitstream preloaded).
        let expect = 10.0 + PcieLink::gen3_x16().transfer_ms(1 << 20) + 20.0;
        assert!(
            (r.latency.max() - expect).abs() < 1e-6,
            "{} vs {expect}",
            r.latency.max()
        );
    }

    #[test]
    fn same_platform_pays_no_transfer_and_no_second_reconfig() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 20.0)],
            Pool::heterogeneous(0, 2),
        );
        s.enqueue_arrivals(&[0.0, 1000.0]);
        s.drain();
        let r = s.finish(5000.0);
        assert_eq!(r.completed, 2);
        // Second request reuses the loaded bitstreams: latency = 10 + 20
        // with no reconfig (each device keeps its kernel).
        let second = r.latency.quantile(0.1).min(r.latency.max());
        assert!(second <= r.latency.max());
        assert!((r.latency.quantile(0.01) - 30.0).abs() < 1.0 || r.latency.max() > 30.0);
        let total_reconfigs: usize = r.devices.iter().map(|d| d.reconfigs).sum();
        assert_eq!(total_reconfigs, 0, "no bitstream swap needed");
    }

    #[test]
    fn gpu_batches_under_load() {
        // One GPU, batchable kernel: 8 simultaneous arrivals should finish
        // far faster than 8 sequential batch-1 executions.
        let one = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap();
        let g = KernelGraphBuilder::new("app").kernel(one).build().unwrap();
        let imp = KernelImpl {
            kernel: KernelId(0),
            kind: DeviceKind::Gpu,
            impl_index: 0,
            latency_ms: 80.0,
            latency_single_ms: 20.0,
            service_ms: 10.0,
            batch: 8,
            active_power_w: 200.0,
            idle_power_w: 40.0,
        };
        let mut s = Simulator::new(
            g,
            &Pool::heterogeneous(1, 0),
            Policy::from_impls(vec![imp]),
            SimConfig::default(),
        );
        s.enqueue_arrivals(&[0.0; 8]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 8);
        // First arrival starts a batch of 1 (20 ms); the other 7 form one
        // batch afterwards. Max latency ≈ 20 + exec(7) < 8 × 20.
        assert!(r.latency.max() < 8.0 * 20.0, "{}", r.latency.max());
    }

    #[test]
    fn queueing_grows_tail_latency() {
        // Single-kernel app on one FPGA (service 9 ms): arrivals every
        // 8 ms overload the device, arrivals every 25 ms do not.
        let one = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap();
        let g = KernelGraphBuilder::new("app").kernel(one).build().unwrap();
        let lat_at = |interval_ms: f64| {
            let mut s = Simulator::new(
                g.clone(),
                &Pool::heterogeneous(0, 1),
                Policy::from_impls(vec![fpga_impl(0, 10.0)]),
                SimConfig::default(),
            );
            let arrivals: Vec<f64> = (0..300).map(|i| i as f64 * interval_ms).collect();
            s.enqueue_arrivals(&arrivals);
            s.drain();
            s.finish(100_000.0).latency.p99()
        };
        assert!(lat_at(8.0) > lat_at(25.0) * 2.0);
    }

    #[test]
    fn reconfiguration_thrash_is_modelled() {
        // One FPGA alternating two kernels pays the bitstream swap each
        // time — a second FPGA eliminates the thrash entirely.
        let run = |fpgas: usize| {
            let mut s = sim(
                vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
                Pool::heterogeneous(0, fpgas),
            );
            s.enqueue_arrivals(&(0..20).map(|i| f64::from(i) * 1000.0).collect::<Vec<_>>());
            s.drain();
            s.finish(60_000.0)
        };
        let thrash = run(1);
        let clean = run(2);
        let thrash_reconfigs: usize = thrash.devices.iter().map(|d| d.reconfigs).sum();
        let clean_reconfigs: usize = clean.devices.iter().map(|d| d.reconfigs).sum();
        assert!(thrash_reconfigs >= 10, "{thrash_reconfigs}");
        assert_eq!(clean_reconfigs, 0);
        // Median: every thrashing request pays two swaps; the clean setup
        // only pays the initial bitstream loads on the first request.
        assert!(thrash.latency.p50() > clean.latency.p50() * 5.0);
    }

    #[test]
    fn power_integrates_idle_plus_active() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
            Pool::heterogeneous(0, 1),
        );
        // No arrivals at all: pure idle for 1 s at the preloaded
        // bitstream's idle power (5 W in the test implementation).
        let r = s.finish(1000.0);
        assert!((r.avg_power_w - 5.0).abs() < 1e-9);
        assert!((r.energy_j - 5.0).abs() < 1e-9);
    }

    #[test]
    fn violation_ratio_reflects_bound() {
        let mut s = sim(
            vec![fpga_impl(0, 150.0), fpga_impl(1, 150.0)],
            Pool::heterogeneous(0, 2),
        );
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(10_000.0);
        // 150 + reconfig 220 + transfer... way over the 200 ms bound.
        assert_eq!(r.qos_violation_ratio, 1.0);
    }

    #[test]
    fn segment_drain_resets_counters() {
        let mut s = sim(
            vec![fpga_impl(0, 5.0), fpga_impl(1, 5.0)],
            Pool::heterogeneous(0, 2),
        );
        s.enqueue_arrivals(&[0.0, 1.0]);
        s.advance_to(5_000.0);
        let (a1, c1, _) = s.drain_segment();
        assert_eq!(a1, 2);
        assert_eq!(c1, 2);
        let (a2, c2, l2) = s.drain_segment();
        assert_eq!((a2, c2), (0, 0));
        assert!(l2.is_empty());
    }

    #[test]
    fn policy_swap_changes_future_executions() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
            Pool::heterogeneous(1, 2),
        );
        s.enqueue_arrivals(&[0.0]);
        s.advance_to(2_000.0);
        // Swap kernel 0 to the GPU for future requests.
        s.set_policy(Policy::from_impls(vec![
            gpu_impl(0, 12.0, 2),
            fpga_impl(1, 10.0),
        ]));
        s.enqueue_arrivals(&[2_000.0]);
        s.drain();
        let r = s.finish(10_000.0);
        assert_eq!(r.completed, 2);
        let gpu = r
            .devices
            .iter()
            .find(|d| d.kind == DeviceKind::Gpu)
            .unwrap();
        assert!(gpu.utilization > 0.0, "GPU executed after the swap");
    }

    #[test]
    fn timeline_records_every_execution() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
            Pool::heterogeneous(0, 2),
        );
        s.record_timeline(true);
        s.enqueue_arrivals(&[0.0, 1.0]);
        s.drain();
        let tl = s.timeline().to_vec();
        // 2 requests × 2 kernels = 4 executions (batch = 1 each).
        assert_eq!(tl.len(), 4);
        for r in &tl {
            assert!(r.completion_ms > r.start_ms);
            assert_eq!(r.batch, 1);
            assert!(r.reconfig_ms >= 0.0);
        }
        // Recording can be turned off again.
        s.record_timeline(false);
        assert!(s.timeline().is_empty());
    }

    #[test]
    fn kernel_breakdown_accounts_every_request() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
            Pool::heterogeneous(0, 2),
        );
        s.enqueue_arrivals(&[0.0, 1.0, 2.0]);
        s.drain();
        let r = s.finish(10_000.0);
        assert_eq!(r.kernels.len(), 2);
        for ks in &r.kernels {
            assert_eq!(ks.requests, 3, "{ks:?}");
            assert!(ks.executions >= 1);
            assert!(ks.busy_ms > 0.0);
            assert!(ks.mean_batch() >= 1.0);
            assert!(ks.mean_wait_ms() >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "no device of kind")]
    fn missing_platform_panics() {
        let mut s = sim(
            vec![gpu_impl(0, 10.0, 1), fpga_impl(1, 10.0)],
            Pool::heterogeneous(0, 1), // no GPU!
        );
        s.enqueue_arrivals(&[0.0]);
        s.drain();
    }

    // --- fault injection ---------------------------------------------------

    fn graph1() -> KernelGraph {
        let k = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap();
        KernelGraphBuilder::new("app").kernel(k).build().unwrap()
    }

    #[test]
    fn fail_stop_retries_inflight_on_survivor() {
        // Two FPGAs, both preloaded with the kernel. The request starts on
        // its home device (0); device 0 dies mid-execution at t = 5 and the
        // work is retried on device 1, completing at 5 + 10 = 15.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0));
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1);
        assert_eq!(r.device_failures, 1);
        assert_eq!(r.retry.device_retries, 1);
        assert!(
            (r.latency.max() - 15.0).abs() < 1e-6,
            "retried completion at 15, got {}",
            r.latency.max()
        );
    }

    #[test]
    fn fail_stop_strands_until_recovery() {
        // The only GPU dies before the request arrives: the work strands
        // (no healthy device of its kind) until the recovery at t = 100
        // re-dispatches it.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(1, 0),
            Policy::from_impls(vec![gpu_impl(0, 20.0, 1)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0).recover(100.0, 0));
        s.enqueue_arrivals(&[10.0]);
        s.advance_to(50.0);
        assert_eq!(s.healthy_devices(), 0);
        assert!(s.available_pool().is_empty());
        assert_eq!(s.queued(), 1, "request parked while the pool is empty");
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1);
        assert!(
            r.latency.max() >= 90.0,
            "latency includes the outage window: {}",
            r.latency.max()
        );
    }

    #[test]
    fn slowdown_derates_execution_until_recovery() {
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().slow_down(0.0, 0, 2.0).recover(100.0, 0));
        s.enqueue_arrivals(&[0.0, 200.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 2);
        // Throttled request takes 2 × 10 ms; post-recovery one is nominal.
        assert!((r.latency.max() - 20.0).abs() < 1e-6, "{}", r.latency.max());
        assert!(
            (r.latency.quantile(0.01) - 10.0).abs() < 1e-6,
            "{}",
            r.latency.quantile(0.01)
        );
        assert_eq!(r.device_failures, 0, "a slowdown is not a fail-stop");
    }

    #[test]
    fn failed_device_draws_no_power() {
        // Idle FPGA at 5 W dies at t = 400: only 400 ms of idle energy is
        // accounted over the 1 s window.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(400.0, 0));
        let r = s.finish(1000.0);
        assert!((r.energy_j - 2.0).abs() < 1e-9, "{}", r.energy_j);
        assert!((r.avg_power_w - 2.0).abs() < 1e-9, "{}", r.avg_power_w);
    }

    #[test]
    fn available_pool_reflects_health() {
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(1, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(10.0, 0).recover(30.0, 0));
        s.advance_to(20.0);
        assert_eq!(s.available_pool(), Pool::heterogeneous(0, 2));
        assert_eq!(s.healthy_devices(), 2);
        s.advance_to(40.0);
        assert_eq!(s.available_pool(), Pool::heterogeneous(1, 2));
        assert_eq!(s.healthy_devices(), 3);
    }

    #[test]
    fn fault_counts_drain_like_segments() {
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0).recover(50.0, 0));
        s.enqueue_arrivals(&[0.0]);
        s.advance_to(100.0);
        let (events, retried) = s.take_fault_counts();
        assert_eq!(events, 2, "fail-stop + recovery");
        assert_eq!(retried, 1);
        assert_eq!(s.take_fault_counts(), (0, 0), "counts drained");
    }

    #[test]
    fn cancel_pending_abandons_incomplete_requests() {
        // Single FPGA, 10 ms service: at t = 25 the first two requests are
        // done and three are queued or in flight. Draining the node
        // abandons exactly those three; they never complete.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.enqueue_arrivals(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        s.advance_to(25.0);
        let cancelled = s.cancel_pending();
        assert_eq!(cancelled, 3);
        assert_eq!(s.queued(), 0, "queues drained");
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 2, "abandoned requests never complete");
        // A second drain has nothing left to cancel.
        assert_eq!(s.cancel_pending(), 0);
    }

    #[test]
    fn cancel_pending_preserves_scripted_recovery() {
        // The only device fails at t = 5 stranding the request; the router
        // drains the node, but the scripted recovery at t = 100 still
        // fires and the node serves fresh traffic afterwards.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0).recover(100.0, 0));
        s.enqueue_arrivals(&[0.0]);
        s.advance_to(50.0);
        assert_eq!(s.healthy_devices(), 0);
        assert_eq!(s.cancel_pending(), 1);
        s.advance_to(150.0);
        assert_eq!(s.healthy_devices(), 1, "recovery survives the drain");
        s.enqueue_arrivals(&[150.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1, "post-recovery traffic is served");
    }

    // --- batch-hold deferral gate ------------------------------------------

    /// One GPU, one batch-8 kernel with a 40 ms wait budget
    /// (0.6 × 200 ms bound − 80 ms full-batch latency).
    fn hold_sim() -> Simulator {
        let imp = KernelImpl {
            kernel: KernelId(0),
            kind: DeviceKind::Gpu,
            impl_index: 0,
            latency_ms: 80.0,
            latency_single_ms: 20.0,
            service_ms: 10.0,
            batch: 8,
            active_power_w: 200.0,
            idle_power_w: 40.0,
        };
        Simulator::new(
            graph1(),
            &Pool::heterogeneous(1, 0),
            Policy::from_impls(vec![imp]),
            SimConfig::default(),
        )
    }

    /// Queue two same-kernel requests directly (bypassing the arrival
    /// EWMA) so the `same >= 2` gate is reachable with a chosen
    /// `arrival_rate`. Marks the last arrival as "now" so the chosen
    /// rate reads as fresh, not stale.
    fn seed_two(s: &mut Simulator) {
        s.last_arrival_ms = s.now;
        for i in 0..2 {
            let req = s.requests.push(s.now, f64::INFINITY);
            assert_eq!(req, i);
            s.devices[0].queue.push_back(WorkItem {
                req,
                kernel: KernelId(0),
                ready_ms: s.now,
                est_ms: s.policy.of(KernelId(0)).service_ms,
                alt: 0,
                hedge: false,
            });
        }
    }

    #[test]
    fn batch_hold_skipped_at_zero_arrival_rate() {
        let mut s = hold_sim();
        seed_two(&mut s);
        s.arrival_rate = 0.0;
        s.try_start(0);
        assert!(
            s.devices[0].executing,
            "zero arrival rate must launch immediately, not divide by zero"
        );
    }

    #[test]
    fn batch_hold_skipped_at_near_zero_arrival_rate() {
        // A vanishing rate passes the `> 0` gate but predicts an absurd
        // fill time, so the fill-within-slack check launches immediately.
        let mut s = hold_sim();
        seed_two(&mut s);
        s.arrival_rate = 1e-9;
        s.try_start(0);
        assert!(s.devices[0].executing);
    }

    #[test]
    fn batch_hold_skipped_when_rate_estimate_is_stale() {
        // The EWMA still reads one arrival per ms from an old burst, but
        // nothing has arrived for 12 ms. The gap refutes the estimate
        // (capped rate 1/12), the predicted fill blows the 40 ms budget,
        // and the partial batch launches instead of waiting it out.
        let mut s = hold_sim();
        seed_two(&mut s);
        s.now = 12.0;
        s.arrival_rate = 1.0;
        s.last_arrival_ms = 0.0;
        s.try_start(0);
        assert!(s.devices[0].executing, "stale rate must not hold the batch");
    }

    #[test]
    fn batch_hold_skipped_when_deadline_passed() {
        // Requests arrived at t = 0 with a 40 ms budget; at t = 50 the
        // deadline is in the past and the partial batch must launch now.
        let mut s = hold_sim();
        seed_two(&mut s);
        s.now = 50.0;
        s.arrival_rate = 1.0;
        s.try_start(0);
        assert!(s.devices[0].executing);
    }

    #[test]
    fn batch_hold_defers_when_fill_lands_exactly_on_deadline() {
        // fill_ms = (8 − 2) / (0.25 / 1 peer) = 24; at t = 16 the batch
        // fills exactly at the 40 ms deadline (16 + 24 = 40), which the
        // `<=` comparison accepts: the device waits, capped at the
        // deadline, then launches.
        let mut s = hold_sim();
        seed_two(&mut s);
        s.now = 16.0;
        s.last_arrival_ms = s.now; // fresh estimate: an arrival just landed
        s.arrival_rate = 0.25;
        s.try_start(0);
        assert!(!s.devices[0].executing, "batch held open");
        let wake = s.events.peek_time().expect("wake event queued");
        assert_eq!(wake, 40.0, "wake capped at the deadline");
        s.advance_to(40.0);
        assert!(s.devices[0].executing, "partial batch launched at deadline");
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 2);
    }

    #[test]
    fn burst_after_idle_launches_partial_batches_promptly() {
        // The arrival-rate EWMA only updates on arrivals, so after a
        // synchronized burst followed by silence it stays frozen at its
        // peak. A second burst must not be held the full wait budget on
        // the strength of that stale estimate: the gap since the last
        // arrival caps the rate, so partial batches launch promptly and
        // deadlined requests survive.
        let mut s = Simulator::new(
            graph2(),
            &Pool::heterogeneous(2, 2),
            Policy::from_impls(vec![gpu_impl(0, 40.0, 8), fpga_impl(1, 10.0)]),
            SimConfig {
                lifecycle: LifecycleConfig {
                    deadline_factor: Some(2.0),
                    retry: RetryPolicy::Backoff(BackoffPolicy::default()),
                    hedge: Some(HedgeConfig::default()),
                },
                ..SimConfig::default()
            },
        );
        let warm: Vec<f64> = (0..50).map(|i| i as f64 * 15.0).collect();
        s.enqueue_arrivals(&warm);
        s.advance_to(1000.0);
        let before = s.audit();
        // Quiet gap, then bursts of 32 simultaneous arrivals (the shape a
        // half-open breaker's probe quota or a drained backlog produces).
        for i in 0..5 {
            let t = 10_000.0 + i as f64 * 10_000.0;
            s.enqueue_arrivals(&vec![t; 32]);
            s.advance_to(t + 10_000.0);
        }
        let a = s.audit();
        a.check().expect("audit green");
        assert!(
            a.completed - before.completed > 100,
            "bursts must complete: {}",
            a.completed - before.completed
        );
    }

    // --- request lifecycle: deadlines, bounded retries, hedging ------------

    fn lifecycle_sim(lifecycle: LifecycleConfig) -> Simulator {
        Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig {
                lifecycle,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn deadline_cancels_doomed_work() {
        // Single FPGA, 10 ms latency, deadline = arrival + 25 ms
        // (0.125 × 200 ms bound). Ten simultaneous arrivals: the first two
        // complete (10, 20 ms); everything else is past its deadline at
        // t = 25 and is cancelled — queued and in-flight alike.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig {
                lifecycle: LifecycleConfig {
                    deadline_factor: Some(0.125),
                    ..LifecycleConfig::default()
                },
                ..SimConfig::default()
            },
        );
        s.enqueue_arrivals(&[0.0; 10]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 2);
        assert_eq!(r.timed_out, 8);
        let a = s.audit();
        a.check().expect("audit invariants hold");
        assert_eq!(a.completed, 2);
        assert_eq!(a.timed_out, 8);
        assert_eq!(a.pending, 0);
        assert!(
            a.refunded_busy_mj > 0.0,
            "the in-flight victim's booked busy energy is refunded"
        );
        assert!(a.refunded_busy_mj <= a.booked_busy_mj);
    }

    #[test]
    fn deadline_budget_propagates_across_stages() {
        // Two-stage DAG under a 200 ms bound with factor 1.0: the budget
        // shrinks monotonically as the request advances and is never
        // negative at any point the clock stops at.
        let mut s = Simulator::new(
            graph2(),
            &Pool::heterogeneous(0, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0), fpga_impl(1, 20.0)]),
            SimConfig {
                lifecycle: LifecycleConfig {
                    deadline_factor: Some(1.0),
                    ..LifecycleConfig::default()
                },
                ..SimConfig::default()
            },
        );
        s.enqueue_arrivals(&[0.0]);
        let mut last = s.remaining_budget_ms(0);
        assert!((last - 200.0).abs() < 1e-9, "{last}");
        for t in [5.0, 10.0, 15.0, 30.0, 250.0] {
            s.advance_to(t);
            let b = s.remaining_budget_ms(0);
            assert!(b >= 0.0, "budget never negative: {b}");
            assert!(b <= last + 1e-9, "budget monotone: {b} after {last}");
            last = b;
        }
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1, "in-budget request completes normally");
        assert_eq!(r.timed_out, 0);
        assert_eq!(s.remaining_budget_ms(0), 0.0, "budget exhausted at 250+");
        s.audit().check().expect("audit invariants hold");
    }

    #[test]
    fn backoff_delays_the_retry() {
        // Same scenario as `fail_stop_retries_inflight_on_survivor`, but
        // with jitter-free backoff: the retry waits base_ms = 5 ms, so the
        // victim completes at 5 (kill) + 5 (backoff) + 10 = 20 ms instead
        // of 15.
        let mut s = lifecycle_sim(LifecycleConfig {
            retry: RetryPolicy::Backoff(BackoffPolicy {
                jitter_frac: 0.0,
                ..BackoffPolicy::default()
            }),
            ..LifecycleConfig::default()
        });
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0));
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1);
        assert_eq!(r.retry.device_retries, 1);
        assert_eq!(r.retry.exhausted, 0);
        assert!(
            (r.latency.max() - 20.0).abs() < 1e-6,
            "retry delayed by 5 ms backoff, got {}",
            r.latency.max()
        );
        s.audit().check().expect("audit invariants hold");
    }

    #[test]
    fn exhausted_retry_budget_fails_the_request() {
        // One FPGA that keeps dying mid-execution. max_retries = 1: the
        // first kill retries (after 5 ms), the second kill exhausts the
        // budget and the request is failed — not retried forever.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig {
                lifecycle: LifecycleConfig {
                    retry: RetryPolicy::Backoff(BackoffPolicy {
                        max_retries: 1,
                        jitter_frac: 0.0,
                        ..BackoffPolicy::default()
                    }),
                    ..LifecycleConfig::default()
                },
                ..SimConfig::default()
            },
        );
        // Kill at 5 (retry dispatches at 10), recover at 6, kill again at
        // 12 mid-retry: attempt 2 > max_retries 1 → failed.
        s.inject_faults(
            &FaultPlan::new()
                .fail_stop(5.0, 0)
                .recover(6.0, 0)
                .fail_stop(12.0, 0)
                .recover(13.0, 0),
        );
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 0, "request failed, not completed");
        assert_eq!(r.retry.device_retries, 1);
        assert_eq!(r.retry.exhausted, 1);
        let a = s.audit();
        a.check().expect("audit invariants hold");
        assert_eq!(a.failed, 1);
        assert_eq!(a.pending, 0);
    }

    #[test]
    fn hedge_fires_against_slow_primary_and_wins() {
        // Warm the latency window with 8 nominal requests (~10 ms each),
        // then derate device 0 by 5×. The next request's primary copy
        // takes 50 ms; the hedge fires at ~10 ms on device 1 and wins.
        let mut s = lifecycle_sim(LifecycleConfig {
            hedge: Some(HedgeConfig {
                quantile: 0.95,
                min_delay_ms: 1.0,
                window: 16,
                min_samples: 4,
            }),
            ..LifecycleConfig::default()
        });
        let warmup: Vec<f64> = (0..8).map(|i| f64::from(i) * 50.0).collect();
        s.enqueue_arrivals(&warmup);
        s.advance_to(400.0);
        s.inject_faults(&FaultPlan::new().slow_down(400.0, 0, 5.0));
        s.enqueue_arrivals(&[450.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 9);
        assert_eq!(r.retry.hedges_fired, 1);
        assert_eq!(r.retry.hedge_wins, 1);
        // The hedged request finished well under the derated 50 ms.
        assert!(r.latency.max() < 40.0, "{}", r.latency.max());
        let a = s.audit();
        a.check().expect("audit invariants hold");
        assert_eq!(
            a.stale_completions, 1,
            "the losing copy's completion event arrives stale"
        );
        assert!(
            a.refunded_busy_mj > 0.0,
            "loser's booked busy time refunded"
        );
    }

    #[test]
    fn hedge_suppressed_when_every_alternate_is_backlogged() {
        // A synchronized burst puts queued work on both devices; every
        // stage out-waits the hedge delay, but duplicating into an
        // equally backlogged peer queue would only double the load. The
        // load guard must suppress all of them.
        let mut s = lifecycle_sim(LifecycleConfig {
            hedge: Some(HedgeConfig {
                quantile: 0.95,
                min_delay_ms: 1.0,
                window: 16,
                min_samples: 4,
            }),
            ..LifecycleConfig::default()
        });
        let warmup: Vec<f64> = (0..8).map(|i| f64::from(i) * 50.0).collect();
        s.enqueue_arrivals(&warmup);
        s.advance_to(400.0);
        s.enqueue_arrivals(&[450.0; 10]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 18);
        assert_eq!(
            r.retry.hedges_fired, 0,
            "no hedge may fire into a backlogged queue"
        );
        s.audit().check().expect("audit invariants hold");
    }

    #[test]
    fn cancel_pending_is_idempotent_and_refunds_once() {
        // Empty simulator: nothing to cancel.
        let mut empty = lifecycle_sim(LifecycleConfig::default());
        assert_eq!(empty.cancel_pending(), 0);
        assert_eq!(empty.cancel_pending(), 0);
        empty.audit().check().expect("empty audit holds");

        // Mid-execution drain: the running request is cancelled, its
        // remaining busy energy refunded exactly once; the second call is
        // a no-op (no double count, no double refund).
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.enqueue_arrivals(&[0.0, 1.0]);
        s.advance_to(5.0);
        assert_eq!(s.cancel_pending(), 2);
        let refunded = s.audit().refunded_busy_mj;
        assert!(refunded > 0.0, "in-flight execution refunded");
        assert_eq!(s.cancel_pending(), 0, "second drain is a no-op");
        assert_eq!(
            s.audit().refunded_busy_mj,
            refunded,
            "no double busy-energy refund"
        );
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 0);
        let a = s.audit();
        a.check().expect("audit invariants hold");
        assert_eq!(a.cancelled, 2);
        assert_eq!(a.pending, 0);
        // Energy books: 5 ms of busy time at 25 W remain accounted, the
        // rest of the 10 ms execution was refunded.
        assert!(a.refunded_busy_mj <= a.booked_busy_mj);
    }

    #[test]
    fn batch_hold_light_load_drains_without_deferral() {
        // Widely spaced arrivals never form a partial batch (`same >= 2`
        // fails), so every request starts immediately at single-request
        // latency.
        let mut s = hold_sim();
        let arrivals: Vec<f64> = (0..5).map(|i| f64::from(i) * 300.0).collect();
        s.enqueue_arrivals(&arrivals);
        s.drain();
        let r = s.finish(5000.0);
        assert_eq!(r.completed, 5);
        assert!(r.latency.max() < 30.0, "{}", r.latency.max());
    }

    /// Regression for the queue-delay estimate: pricing every queued
    /// entry at the *candidate's* `service_ms` (the old formula) sees a
    /// queue of one 100 ms entry as "one × 10 ms" and misroutes new work
    /// onto the device with the expensive backlog. Summing each entry's
    /// own estimate routes to the genuinely shorter queue.
    #[test]
    fn mixed_cost_queue_estimate_routes_to_cheapest_backlog() {
        let mut s = sim(
            vec![gpu_impl(0, 10.0, 1), gpu_impl(1, 10.0, 1)],
            Pool::heterogeneous(2, 0),
        );
        // Home for kernel 0 is device 0; it holds one expensive queued
        // stage (est 100 ms). Device 1 holds two cheap ones (1 ms each).
        for (dev, est) in [(0usize, 100.0), (1, 1.0), (1, 1.0)] {
            s.devices[dev].queue.push_back(WorkItem {
                req: 0,
                kernel: KernelId(1),
                ready_ms: 0.0,
                est_ms: est,
                alt: 0,
                hedge: false,
            });
        }
        let imp = gpu_impl(0, 10.0, 1);
        let (dev, score) = s
            .choose_device_for(&imp, None, true)
            .expect("healthy GPUs exist");
        // New pricing: dev0 = 100, dev1 = 2 + 10 (spill) = 12. The old
        // per-candidate formula gave dev0 = 1×10 = 10 vs dev1 = 2×10 +
        // 10 = 30 and picked the 100 ms backlog.
        assert_eq!(dev, 1, "must avoid the expensive backlog");
        assert!((score - 12.0).abs() < 1e-9, "score {score}");
    }

    /// A policy for the dynamic-layer tests: GPU front stage with an
    /// FPGA alternate, FPGA back stage with a second (faster, hungrier)
    /// FPGA implementation as its alternate.
    fn dyn_policy() -> Policy {
        let p0 = gpu_impl(0, 40.0, 8);
        let p1 = fpga_impl(1, 12.0);
        let alt0 = KernelImpl {
            impl_index: 1,
            ..fpga_impl(0, 30.0)
        };
        let alt1 = KernelImpl {
            impl_index: 1,
            latency_ms: 8.0,
            latency_single_ms: 8.0,
            service_ms: 7.2,
            active_power_w: 60.0,
            ..fpga_impl(1, 8.0)
        };
        Policy::from_impls(vec![p0, p1]).with_alternate_impls(vec![vec![p0, alt0], vec![p1, alt1]])
    }

    fn burst_arrivals() -> Vec<f64> {
        // Bursty: ramped clumps that backlog the GPU batch stage.
        (0..200).map(|i| f64::from(i / 8) * 20.0).collect()
    }

    fn sizes_for(n: usize) -> Vec<f64> {
        crate::workload::SizeDist::heavy_tail().sample(n, 7)
    }

    fn run_dyn(policy: Policy, dynamic: Option<DynamicDispatch>) -> SimReport {
        let mut s = Simulator::new(
            graph2(),
            &Pool::heterogeneous(1, 2),
            policy,
            SimConfig {
                dynamic,
                ..SimConfig::default()
            },
        );
        let arrivals = burst_arrivals();
        let sizes = sizes_for(arrivals.len());
        s.enqueue_arrivals_sized(&arrivals, &sizes);
        s.drain();
        s.audit().check().expect("audit invariants hold");
        s.finish(60_000.0)
    }

    /// With the dynamic layer off, carrying alternates must change
    /// nothing, and turning the knob on without alternates must be
    /// equally inert — both reduce to the static plan bit-for-bit.
    #[test]
    fn dynamic_off_is_byte_identical_to_static() {
        let baseline = run_dyn(
            Policy::from_impls(vec![gpu_impl(0, 40.0, 8), fpga_impl(1, 12.0)]),
            None,
        );
        let with_alts = run_dyn(dyn_policy(), None);
        let knob_only = run_dyn(
            Policy::from_impls(vec![gpu_impl(0, 40.0, 8), fpga_impl(1, 12.0)]),
            Some(DynamicDispatch::default()),
        );
        for (name, r) in [("alternates-off", &with_alts), ("knob-no-alts", &knob_only)] {
            assert_eq!(r.completed, baseline.completed, "{name}");
            assert_eq!(r.energy_j.to_bits(), baseline.energy_j.to_bits(), "{name}");
            let (a, b) = (baseline.latency.samples(), r.latency.samples());
            assert_eq!(a.len(), b.len(), "{name}");
            assert!(
                a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{name}: latency stream diverged"
            );
        }
    }

    /// The dynamic chooser is deterministic: two identical runs produce
    /// bit-identical latency streams, energy, and steal counts.
    #[test]
    fn dynamic_chooser_is_deterministic() {
        let a = run_dyn(dyn_policy(), Some(DynamicDispatch::default()));
        let b = run_dyn(dyn_policy(), Some(DynamicDispatch::default()));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
        assert_eq!(a.retry.steals, b.retry.steals);
        assert!(a
            .latency
            .samples()
            .iter()
            .zip(b.latency.samples())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    /// Work stealing is a pure same-implementation queue migration: an
    /// idle device with the right bitstream takes the tail of the
    /// deepest backlog, unchanged.
    #[test]
    fn steal_migrates_tail_to_idle_same_impl_device() {
        let mut s = Simulator::new(
            graph2(),
            &Pool::heterogeneous(0, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0), fpga_impl(1, 20.0)])
                .with_alternate_impls(vec![vec![fpga_impl(0, 10.0)], vec![fpga_impl(1, 20.0)]]),
            SimConfig {
                dynamic: Some(DynamicDispatch::default()),
                ..SimConfig::default()
            },
        );
        // A far-future arrival materializes request 0 in the arena so a
        // stolen stage can actually start on the thief.
        s.enqueue_arrivals(&[1e9]);
        // Both devices hold kernel 0's bitstream; device 1 has the
        // backlog, device 0 is idle.
        s.devices[0].loaded = Some((KernelId(0), 0));
        s.devices[1].loaded = Some((KernelId(0), 0));
        let item = WorkItem {
            req: 0,
            kernel: KernelId(0),
            ready_ms: 0.0,
            est_ms: 9.0,
            alt: 0,
            hedge: false,
        };
        // One queued entry is below the two-entry floor: no steal.
        s.devices[1].queue.push_back(item);
        s.try_steal(0);
        assert_eq!(
            s.retry_stats.steals, 0,
            "single-entry queues are not farmed"
        );
        // Two entries: the thief takes the tail and starts it; the
        // victim keeps its front.
        s.devices[1].queue.push_back(item);
        s.try_steal(0);
        assert_eq!(s.retry_stats.steals, 1);
        assert_eq!(
            s.devices[0].queue.len() + s.devices[0].inflight.len(),
            1,
            "tail moved to the thief"
        );
        assert_eq!(s.devices[1].queue.len(), 1, "victim keeps its front");
    }

    /// Deadline cancellation interacts with per-request sizes through
    /// the DAG budget: an oversized request whose size-scaled stages
    /// overrun `deadline_factor × bound` is abandoned at its deadline,
    /// while a nominal one sharing the run completes — and the audit
    /// stays conserved with the refunded busy energy booked once.
    #[test]
    fn deadline_cancellation_respects_request_sizes() {
        let mut s = Simulator::new(
            graph2(),
            &Pool::heterogeneous(0, 2),
            Policy::from_impls(vec![fpga_impl(0, 40.0), fpga_impl(1, 40.0)]),
            SimConfig {
                lifecycle: LifecycleConfig {
                    deadline_factor: Some(2.0),
                    ..LifecycleConfig::default()
                },
                ..SimConfig::default()
            },
        );
        // size 8 ⇒ FPGA scale 0.1 + 0.9×8 = 7.3 ⇒ ≈292 ms per stage;
        // two stages blow through its 450 ms deadline mid-flight on the
        // second stage. size 1 finishes both stages in ~80 ms.
        s.enqueue_arrivals_sized(&[0.0, 50.0], &[1.0, 8.0]);
        s.drain();
        let r = s.finish(5_000.0);
        let a = s.audit();
        a.check().expect("audit invariants hold");
        assert_eq!(r.completed, 1, "nominal request completes");
        assert_eq!(a.timed_out, 1, "oversized request hits its deadline");
        assert_eq!(a.terminal(), 2, "both requests reach a terminal state");
        assert!(
            a.refunded_busy_mj > 0.0,
            "the cancelled stage's remaining busy energy is refunded"
        );
        assert!(
            r.latency.max() < 200.0,
            "the survivor is not delayed past the bound by the doomed one: {}",
            r.latency.max()
        );
    }
}
