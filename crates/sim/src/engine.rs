use crate::arena::{Outcome, ReqArena};
use crate::audit::AuditReport;
use crate::device::{DeviceState, DeviceStats, InflightItem, WorkItem};
use crate::equeue::EventQueue;
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::lifecycle::{LifecycleConfig, RetryPolicy};
use crate::metrics::RetryStats;
use crate::{KernelImpl, LatencyStats, Policy};
use poly_device::{DeviceKind, PcieLink};
use poly_ir::{KernelGraph, KernelId};
use poly_obs::{Event as ObsEvent, Recorder};
use poly_sched::Pool;
use std::collections::VecDeque;
use std::sync::Arc;

/// Fraction of GPU board idle power drawn when the current policy leaves
/// the GPU unused (deep-idle clocks, memory parked).
pub const GPU_PARKED_FRACTION: f64 = 0.3;

/// Static simulation parameters of one leaf node.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// PCIe link paying inter-platform kernel transfers.
    pub pcie: PcieLink,
    /// QoS (p99) latency bound in milliseconds, for violation accounting.
    pub latency_bound_ms: f64,
    /// GPU board idle power before any kernel has run, in watts.
    pub gpu_idle_w: f64,
    /// FPGA board idle power before any bitstream is loaded, in watts.
    pub fpga_idle_w: f64,
    /// FPGA reconfiguration time in milliseconds.
    pub fpga_reconfig_ms: f64,
    /// Per-request lifecycle policy (deadlines, bounded retries, hedged
    /// dispatch). The default disables all of it — legacy behavior.
    pub lifecycle: LifecycleConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            pcie: PcieLink::gen3_x16(),
            latency_bound_ms: 200.0,
            gpu_idle_w: 42.0,
            fpga_idle_w: 4.5,
            fpga_reconfig_ms: 220.0,
            lifecycle: LifecycleConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Arrival {
        req: usize,
    },
    Dispatch {
        req: usize,
        kernel: KernelId,
    },
    DeviceFree {
        dev: usize,
    },
    /// `attempt` invalidates completions of executions killed by a device
    /// fail-stop: a stale event whose attempt no longer matches the
    /// request's counter is ignored. `hedge` marks completions of hedge
    /// copies (win attribution only).
    Complete {
        req: usize,
        kernel: KernelId,
        attempt: u32,
        hedge: bool,
    },
    /// Scripted fault (index into `Simulator::faults`).
    Fault {
        idx: usize,
    },
    /// The request's deadline: if it is still incomplete, every copy of
    /// its work is cancelled and it is marked timed out.
    Deadline {
        req: usize,
    },
    /// Hedge check scheduled at dispatch + hedge delay: if the stage is
    /// still outstanding under the same attempt, fire a second copy on
    /// another device.
    HedgeFire {
        req: usize,
        kernel: KernelId,
        attempt: u32,
    },
}

/// Per-kernel execution breakdown over a simulation window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelStats {
    /// Kernel executions started (batches, not requests).
    pub executions: usize,
    /// Requests served across those executions.
    pub requests: usize,
    /// Total queueing delay observed by requests before their kernel
    /// execution started, in milliseconds.
    pub queue_wait_ms: f64,
    /// Total device-occupancy time of this kernel's executions, in
    /// milliseconds.
    pub busy_ms: f64,
}

impl KernelStats {
    /// Mean batch size of the kernel's executions.
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.requests as f64 / self.executions as f64
        }
    }

    /// Mean per-request queueing delay in milliseconds.
    #[must_use]
    pub fn mean_wait_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.queue_wait_ms / self.requests as f64
        }
    }
}

/// One recorded kernel execution (timeline/Gantt entry), available when
/// recording is enabled via [`Simulator::record_timeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionRecord {
    /// Device index within the pool.
    pub device: usize,
    /// Device kind.
    pub kind: DeviceKind,
    /// Kernel executed.
    pub kernel: KernelId,
    /// Implementation index of the policy at execution time.
    pub impl_index: usize,
    /// When the device committed to the batch (reconfiguration included).
    pub start_ms: f64,
    /// Reconfiguration time paid before execution (FPGA bitstream swap).
    pub reconfig_ms: f64,
    /// When results complete.
    pub completion_ms: f64,
    /// Requests served by this execution.
    pub batch: usize,
}

/// Summary of one completed simulation (or simulation segment).
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated duration in milliseconds.
    pub duration_ms: f64,
    /// Requests that arrived.
    pub arrived: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Latency distribution of completed requests.
    pub latency: LatencyStats,
    /// Fraction of completed requests exceeding the QoS bound.
    pub qos_violation_ratio: f64,
    /// Mean node power over the duration (idle + active, all devices), W.
    pub avg_power_w: f64,
    /// Total energy over the duration, in joules.
    pub energy_j: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Per-device statistics.
    pub devices: Vec<DeviceStats>,
    /// Per-kernel execution breakdown, indexed by kernel id.
    pub kernels: Vec<KernelStats>,
    /// Fail-stop faults applied since construction.
    pub device_failures: usize,
    /// Re-issue accounting (fail-stop retries, exhausted retry budgets,
    /// hedges) since construction.
    pub retry: RetryStats,
    /// Requests abandoned at their deadline since construction (0 unless
    /// the lifecycle config enables deadlines).
    pub timed_out: usize,
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} requests in {:.1} s: p50 {:.1} ms, p99 {:.1} ms, {:.1} RPS, {:.1} W ({:.2}% over bound)",
            self.completed,
            self.arrived,
            self.duration_ms / 1000.0,
            self.latency.p50(),
            self.latency.p99(),
            self.throughput_rps,
            self.avg_power_w,
            self.qos_violation_ratio * 100.0
        )
    }
}

/// Discrete-event simulator of one accelerator-outfitted leaf node.
///
/// Drive it by enqueuing arrivals
/// ([`enqueue_arrivals`](Self::enqueue_arrivals)), advancing time
/// ([`advance_to`](Self::advance_to)) — optionally swapping the execution
/// [`Policy`] between advances, which is how the Poly runtime's re-planning
/// loop is simulated — and finally collecting a [`SimReport`]
/// ([`finish`](Self::finish)).
#[derive(Debug, Clone)]
pub struct Simulator {
    graph: KernelGraph,
    policy: Policy,
    config: SimConfig,
    devices: Vec<DeviceState>,
    /// Timer-wheel event queue; stamps each event with a monotone
    /// sequence number and pops in exact `(time, seq)` order.
    events: EventQueue<EventKind>,
    /// Struct-of-arrays request state with global, never-reused indices
    /// (settled prefixes compact away at accounting resets).
    requests: ReqArena,
    now: f64,
    arrived: usize,
    completed: usize,
    stats_since: f64,
    /// Per-kernel batch-wait budget (ms after request arrival by which the
    /// kernel must start to keep the QoS bound reachable); 0 disables
    /// waiting. Recomputed on policy changes.
    wait_budget: Vec<f64>,
    /// EWMA arrival rate (requests per ms), for adaptive batching.
    arrival_rate: f64,
    last_arrival_ms: f64,
    /// Completed-request latencies since the last accounting reset.
    /// Shared (copy-on-write) so report generation can snapshot it in
    /// O(1) instead of cloning the whole buffer.
    latencies: Arc<Vec<f64>>,
    /// Reusable workspace for quantile selection at report time.
    lat_scratch: Vec<f64>,
    segment_latencies: Vec<f64>,
    segment_arrived: usize,
    segment_completed: usize,
    kernel_stats: Vec<KernelStats>,
    timeline: Option<Vec<ExecutionRecord>>,
    /// Scripted faults, indexed by `EventKind::Fault`.
    faults: Vec<FaultEvent>,
    /// Work with no healthy device of the required kind, parked until a
    /// policy change or a recovery makes it dispatchable again.
    stranded: Vec<WorkItem>,
    /// Fail-stops applied since construction.
    fault_failures: usize,
    /// Re-issue ledger (fail-stop retries, exhausted budgets, hedges),
    /// since construction.
    retry_stats: RetryStats,
    /// Fault events applied since the last `take_fault_counts`.
    seg_fault_events: usize,
    /// Retried work items since the last `take_fault_counts`.
    seg_retries: usize,
    /// Requests timed out / failed since the last `take_lifecycle_counts`.
    seg_timeouts: usize,
    seg_failed: usize,
    /// Rolling per-kernel stage-latency windows feeding the hedge-delay
    /// quantile (filled only when hedging is enabled).
    hedge_window: Vec<VecDeque<f64>>,
    // --- reusable scratch buffers (hot-path allocation elimination) --------
    /// Batch under formation in `try_start`.
    batch_scratch: Vec<WorkItem>,
    /// Queue remainder while a batch forms in `try_start`.
    rest_scratch: VecDeque<WorkItem>,
    /// Successor edges of the completing kernel in `complete`.
    succ_scratch: Vec<(KernelId, u64)>,
    /// Devices touched by a cancellation sweep.
    touched_scratch: Vec<usize>,
    /// Hedge-window copy for quantile selection.
    hedge_scratch: Vec<f64>,
    // --- lifetime audit counters (never reset; see `audit`) ---------------
    life_admitted: usize,
    life_completed: usize,
    life_timed_out: usize,
    life_failed: usize,
    life_cancelled: usize,
    audit_stale: usize,
    audit_double_terminal: usize,
    audit_clock_regressions: usize,
    booked_busy_mj: f64,
    refunded_busy_mj: f64,
    /// Telemetry sink (`None` = recording off). The recorder keeps its
    /// own sequence numbering and never feeds back into simulation state,
    /// so attaching one cannot perturb results.
    recorder: Option<Box<dyn Recorder>>,
}

impl Simulator {
    /// Create a simulator for `graph` on the devices of `pool`, executing
    /// per `policy`.
    #[must_use]
    pub fn new(graph: KernelGraph, pool: &Pool, policy: Policy, config: SimConfig) -> Self {
        let n_kernels = graph.len();
        let devices = pool
            .kinds()
            .iter()
            .map(|&kind| match kind {
                DeviceKind::Gpu => DeviceState::new(kind, 0.0, config.gpu_idle_w),
                DeviceKind::Fpga => {
                    DeviceState::new(kind, config.fpga_reconfig_ms, config.fpga_idle_w)
                }
            })
            .collect();
        let pred_template: Vec<u16> = (0..n_kernels)
            .map(|i| {
                u16::try_from(graph.predecessors(KernelId(i)).count())
                    .expect("predecessor count fits u16")
            })
            .collect();
        let mut sim = Self {
            graph,
            policy,
            config,
            devices,
            events: EventQueue::new(),
            requests: ReqArena::new(pred_template),
            now: 0.0,
            arrived: 0,
            completed: 0,
            stats_since: 0.0,
            wait_budget: Vec::new(),
            arrival_rate: 0.0,
            last_arrival_ms: -1.0,
            latencies: Arc::new(Vec::new()),
            lat_scratch: Vec::new(),
            segment_latencies: Vec::new(),
            segment_arrived: 0,
            segment_completed: 0,
            kernel_stats: vec![KernelStats::default(); n_kernels],
            timeline: None,
            faults: Vec::new(),
            stranded: Vec::new(),
            fault_failures: 0,
            retry_stats: RetryStats::default(),
            seg_fault_events: 0,
            seg_retries: 0,
            seg_timeouts: 0,
            seg_failed: 0,
            hedge_window: vec![VecDeque::new(); n_kernels],
            batch_scratch: Vec::new(),
            rest_scratch: VecDeque::new(),
            succ_scratch: Vec::new(),
            touched_scratch: Vec::new(),
            hedge_scratch: Vec::new(),
            life_admitted: 0,
            life_completed: 0,
            life_timed_out: 0,
            life_failed: 0,
            life_cancelled: 0,
            audit_stale: 0,
            audit_double_terminal: 0,
            audit_clock_regressions: 0,
            booked_busy_mj: 0.0,
            refunded_busy_mj: 0.0,
            recorder: None,
        };
        sim.preload_bitstreams();
        sim.recompute_wait_budgets();
        sim.apply_idle_floors();
        sim
    }

    /// Park platforms the current policy does not use: a GPU with no
    /// assigned kernel drops to its deep-idle (low-DVFS, memory parked)
    /// power — the paper's runtime "reduc[es] the GPU operating frequency"
    /// at low load (Section VI-C). [`GPU_PARKED_FRACTION`] of board idle.
    fn apply_idle_floors(&mut self) {
        let uses_gpu = self
            .policy
            .impls()
            .iter()
            .any(|i| i.kind == DeviceKind::Gpu);
        for d in &mut self.devices {
            if d.kind == DeviceKind::Gpu && d.healthy {
                d.idle_power_w = if uses_gpu {
                    self.config.gpu_idle_w
                } else {
                    self.config.gpu_idle_w * GPU_PARKED_FRACTION
                };
            }
        }
    }

    /// Slack-aware batch budgets: a kernel's batch may be held open until
    /// `request arrival + budget`, where the budget is what remains of the
    /// QoS bound after the downstream critical path at full-batch
    /// latencies. FPGAs and unbatched implementations never wait.
    fn recompute_wait_budgets(&mut self) {
        let order = self
            .graph
            .topological_order()
            .expect("validated graph is acyclic");
        let mut remaining = vec![0.0_f64; self.graph.len()];
        for &id in order.iter().rev() {
            let tail = self
                .graph
                .successors(id)
                .map(|e| {
                    let differs = self.policy.of(e.from).kind != self.policy.of(e.to).kind;
                    let t = if differs {
                        self.config.pcie.transfer_ms(e.bytes)
                    } else {
                        0.0
                    };
                    t + remaining[e.to.0]
                })
                .fold(0.0_f64, f64::max);
            remaining[id.0] = self.policy.of(id).latency_ms + tail;
        }
        self.wait_budget = (0..self.graph.len())
            .map(|i| {
                let imp = self.policy.of(KernelId(i));
                if imp.kind == DeviceKind::Gpu && imp.batch > 1 {
                    (self.config.latency_bound_ms * 0.6 - remaining[i]).max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
    }

    /// Configure FPGA devices with the policy's bitstreams at time zero,
    /// mirroring how a leaf node pre-provisions accelerators when it
    /// adopts a plan. Devices are split among the policy's FPGA kernels
    /// **proportionally to their service demand** (largest remainder, at
    /// least one each while devices last) — the same split the analytic
    /// capacity model assumes. Later policy changes pay reconfiguration.
    fn preload_bitstreams(&mut self) {
        let fpga_kernels: Vec<(poly_ir::KernelId, usize, f64, f64)> = self
            .policy
            .impls()
            .iter()
            .filter(|i| i.kind == DeviceKind::Fpga)
            .map(|i| (i.kernel, i.impl_index, i.idle_power_w, i.service_ms))
            .collect();
        if fpga_kernels.is_empty() {
            return;
        }
        let fpga_devs: Vec<usize> = self
            .devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == DeviceKind::Fpga)
            .map(|(i, _)| i)
            .collect();
        let n = fpga_devs.len() as f64;
        let total: f64 = fpga_kernels.iter().map(|k| k.3).sum();
        let mut shares: Vec<f64> = fpga_kernels
            .iter()
            .map(|k| {
                if total > 0.0 {
                    (k.3 / total * n).floor().max(1.0)
                } else {
                    1.0
                }
            })
            .collect();
        // Trim if minimums overshoot, then hand out spares to the most
        // loaded kernels.
        while shares.iter().sum::<f64>() > n && shares.iter().any(|&s| s > 1.0) {
            let (idx, _) = shares
                .iter()
                .enumerate()
                .filter(|(_, &s)| s > 1.0)
                .map(|(j, &s)| (j, fpga_kernels[j].3 / s))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("some share above one");
            shares[idx] -= 1.0;
        }
        let mut spare = n - shares.iter().sum::<f64>();
        while spare >= 1.0 {
            let (idx, _) = fpga_kernels
                .iter()
                .enumerate()
                .map(|(j, k)| (j, k.3 / shares[j]))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            shares[idx] += 1.0;
            spare -= 1.0;
        }
        let mut cursor = fpga_devs.into_iter();
        for ((kernel, idx, idle, _), share) in fpga_kernels.iter().zip(&shares) {
            for _ in 0..(*share as usize) {
                let Some(dev) = cursor.next() else { return };
                self.devices[dev].loaded = Some((*kernel, *idx));
                self.devices[dev].idle_power_w = *idle;
            }
        }
    }

    /// Current simulation time in milliseconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Enable (or disable) execution-timeline recording. Recording keeps
    /// one [`ExecutionRecord`] per started batch, capped at 100 000
    /// entries; intended for Gantt-style inspection of short runs.
    pub fn record_timeline(&mut self, enable: bool) {
        self.timeline = if enable { Some(Vec::new()) } else { None };
    }

    /// The recorded executions so far (empty when recording is off).
    #[must_use]
    pub fn timeline(&self) -> &[ExecutionRecord] {
        self.timeline.as_deref().unwrap_or(&[])
    }

    /// Attach (or detach, with `None`) a telemetry [`Recorder`]. Every
    /// emission site gates on [`Recorder::enabled`] before constructing
    /// an event, so a `NullRecorder` (or no recorder) costs one branch.
    pub fn set_recorder(&mut self, recorder: Option<Box<dyn Recorder>>) {
        self.recorder = recorder;
    }

    /// Whether an enabled recorder is attached (emission sites use this
    /// to skip event construction entirely when recording is off).
    #[must_use]
    pub fn recording(&self) -> bool {
        self.recorder.as_ref().is_some_and(|r| r.enabled())
    }

    /// Record `event` at sim time `t_ms`.
    fn obs_at(&mut self, t_ms: f64, event: ObsEvent) {
        if let Some(r) = &mut self.recorder {
            r.record(t_ms, event);
        }
    }

    /// Record `event` at the current sim time.
    fn obs(&mut self, event: ObsEvent) {
        let now = self.now;
        self.obs_at(now, event);
    }

    /// Replace the execution policy. Running executions finish under the
    /// old implementations; future dispatches use the new ones (FPGAs pay
    /// reconfiguration when the loaded bitstream no longer matches).
    pub fn set_policy(&mut self, policy: Policy) {
        assert_eq!(
            policy.len(),
            self.graph.len(),
            "policy must cover every kernel"
        );
        self.policy = policy;
        self.recompute_wait_budgets();
        self.apply_idle_floors();
        // A new plan may make stranded work dispatchable again (e.g. it
        // moves a kernel off a failed platform).
        self.redispatch_stranded();
    }

    /// Enqueue request arrivals at the given absolute times (ms). Times
    /// before the current simulation time are clamped to "now". When the
    /// lifecycle config sets a deadline factor, each request also gets an
    /// absolute deadline (`arrival + factor × bound`) at which all its
    /// outstanding work is cancelled.
    pub fn enqueue_arrivals(&mut self, times: &[f64]) {
        let factor = self.config.lifecycle.deadline_factor;
        for &t in times {
            let arrival_ms = t.max(self.now);
            let deadline_ms = factor.map_or(f64::INFINITY, |f| {
                arrival_ms + f * self.config.latency_bound_ms
            });
            let req = self.requests.push(arrival_ms, deadline_ms);
            self.life_admitted += 1;
            self.push(arrival_ms, EventKind::Arrival { req });
            if deadline_ms.is_finite() {
                self.push(deadline_ms, EventKind::Deadline { req });
            }
            if self.recording() {
                self.obs_at(arrival_ms, ObsEvent::ReqEnqueue { req, deadline_ms });
            }
        }
    }

    fn push(&mut self, t: f64, kind: EventKind) {
        self.events.push(t, kind);
    }

    /// Process all events up to (and including) time `t`.
    pub fn advance_to(&mut self, t: f64) {
        while let Some(et) = self.events.peek_time() {
            if et > t {
                break;
            }
            let (et, _, kind) = self.events.pop().expect("peeked");
            if et < self.now - 1e-9 {
                self.audit_clock_regressions += 1;
            }
            self.now = self.now.max(et);
            self.handle(kind);
        }
        self.now = self.now.max(t);
    }

    /// Run until the event queue drains (all enqueued requests complete),
    /// then return the absolute completion time.
    pub fn drain(&mut self) -> f64 {
        while let Some((et, _, kind)) = self.events.pop() {
            if et < self.now - 1e-9 {
                self.audit_clock_regressions += 1;
            }
            self.now = self.now.max(et);
            self.handle(kind);
        }
        self.now
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::Arrival { req } => {
                // A request cancelled before its arrival event fired (node
                // drain between enqueue and arrival) never enters.
                if self.requests.is_settled(req) {
                    return;
                }
                self.arrived += 1;
                self.segment_arrived += 1;
                if self.last_arrival_ms >= 0.0 {
                    let interval = (self.now - self.last_arrival_ms).max(0.01);
                    self.arrival_rate = 0.9 * self.arrival_rate + 0.1 / interval;
                }
                self.last_arrival_ms = self.now;
                for source in self.graph.sources() {
                    self.push(
                        self.now,
                        EventKind::Dispatch {
                            req,
                            kernel: source,
                        },
                    );
                }
            }
            EventKind::Dispatch { req, kernel } => {
                // The request is already settled (hedge twin finished
                // the stage, or a terminal transition happened while
                // this dispatch was in flight).
                if self.requests.is_settled(req) || self.requests.done(req, kernel.0) {
                    return;
                }
                // Doomed work is cancelled at dispatch instead of
                // queued: a stage with no remaining budget cannot
                // produce an in-bound completion.
                if self.now >= self.requests.deadline_ms(req) {
                    self.abort_request(req, Outcome::TimedOut);
                    return;
                }
                let item = WorkItem {
                    req,
                    kernel,
                    ready_ms: self.now,
                    hedge: false,
                };
                // Snapshot the hedge delay before try_start records this
                // stage's own projected latency into the window — a slow
                // primary must not inflate its own hedge delay.
                let hedge_delay = self.hedge_delay_ms(kernel);
                match self.choose_device(kernel, None) {
                    Some(dev) => {
                        self.devices[dev].queue.push_back(item);
                        if self.recording() {
                            let attempt = self.requests.attempt(req, kernel.0);
                            self.obs(ObsEvent::StageDispatch {
                                req,
                                kernel: kernel.0,
                                device: dev,
                                attempt,
                                hedge: false,
                            });
                        }
                        self.try_start(dev);
                        if let Some(delay) = hedge_delay {
                            self.maybe_schedule_hedge(req, kernel, delay);
                        }
                    }
                    // Every device of the required kind is down: park the
                    // work until a re-plan or a recovery.
                    None => {
                        self.stranded.push(item);
                        if self.recording() {
                            self.obs(ObsEvent::StageStranded {
                                req,
                                kernel: kernel.0,
                            });
                        }
                    }
                }
            }
            EventKind::DeviceFree { dev } => {
                if self.devices[dev].healthy && self.devices[dev].busy_until <= self.now + 1e-12 {
                    self.devices[dev].executing = false;
                    self.try_start(dev);
                }
            }
            EventKind::Complete {
                req,
                kernel,
                attempt,
                hedge,
            } => self.complete(req, kernel, attempt, hedge),
            EventKind::Fault { idx } => self.apply_fault(idx),
            EventKind::Deadline { req } => {
                if !self.requests.is_settled(req) {
                    self.abort_request(req, Outcome::TimedOut);
                }
            }
            EventKind::HedgeFire {
                req,
                kernel,
                attempt,
            } => self.hedge_fire(req, kernel, attempt),
        }
    }

    /// Schedule a hedge check for the stage just dispatched. The caller
    /// sampled `delay` from the latency window *before* the stage
    /// started, so the quantile reflects its peers, not itself.
    fn maybe_schedule_hedge(&mut self, req: usize, kernel: KernelId, delay: f64) {
        if self.requests.hedged(req, kernel.0) {
            return; // one hedge per stage
        }
        let attempt = self.requests.attempt(req, kernel.0);
        let at = self.now + delay;
        // Never hedge past the deadline: the copy could not win in time.
        if at >= self.requests.deadline_ms(req) {
            return;
        }
        self.push(
            at,
            EventKind::HedgeFire {
                req,
                kernel,
                attempt,
            },
        );
    }

    /// The current hedge delay for `kernel`: the configured quantile over
    /// its rolling stage-latency window, floored at `min_delay_ms`.
    /// `None` while hedging is disabled or the window is cold.
    fn hedge_delay_ms(&mut self, kernel: KernelId) -> Option<f64> {
        let h = self.config.lifecycle.hedge?;
        let w = &self.hedge_window[kernel.0];
        if w.len() < h.min_samples.max(1) {
            return None;
        }
        // Same nearest-rank selection as `hedge_delay_from`, but over the
        // reusable scratch buffer instead of a fresh sorted copy.
        let mut scratch = std::mem::take(&mut self.hedge_scratch);
        scratch.clear();
        scratch.extend(w.iter().copied());
        scratch.sort_by(f64::total_cmp);
        let n = scratch.len();
        let rank = ((h.quantile * n as f64).ceil() as usize).clamp(1, n) - 1;
        let delay = scratch[rank].max(h.min_delay_ms);
        self.hedge_scratch = scratch;
        Some(delay)
    }

    /// Fire the hedge for a stage that is still outstanding: queue a
    /// duplicate copy on a device other than the one holding the primary.
    /// First completion wins (the `done` flag makes the duplicate safe);
    /// the loser is cancelled and its booked busy energy refunded.
    fn hedge_fire(&mut self, req: usize, kernel: KernelId, attempt: u32) {
        let now = self.now;
        let k = kernel.0;
        if self.requests.is_settled(req)
            || self.requests.done(req, k)
            || self.requests.attempt(req, k) != attempt
            || self.requests.hedged(req, k)
            || now >= self.requests.deadline_ms(req)
        {
            return;
        }
        // Locate the device holding the primary copy (queued or in
        // flight); a stranded primary has nothing to race against.
        let holder = self.devices.iter().position(|d| {
            d.queue
                .iter()
                .any(|it| it.req == req && it.kernel == kernel)
                || d.inflight.iter().any(|e| {
                    e.item.req == req
                        && e.item.kernel == kernel
                        && e.attempt == attempt
                        && e.completion_ms > now + 1e-12
                })
        });
        let Some(holder) = holder else { return };
        let Some(alt) = self.choose_device(kernel, Some(holder)) else {
            return;
        };
        // A hedge only helps when the copy can start ahead of the queued
        // primary. Duplicating into a device that is itself backlogged
        // amplifies load exactly when the system can least afford it — a
        // synchronized burst would hedge every request at once, double
        // every queue, and starve both copies past the deadline.
        let alt_ready = {
            let d = &self.devices[alt];
            d.queue.is_empty() && d.busy_until.max(now) < self.requests.deadline_ms(req)
        };
        if !alt_ready {
            return;
        }
        self.requests.set_hedged(req, k);
        self.retry_stats.hedges_fired += 1;
        self.devices[alt].queue.push_back(WorkItem {
            req,
            kernel,
            ready_ms: now,
            hedge: true,
        });
        if self.recording() {
            self.obs(ObsEvent::HedgeFired {
                req,
                kernel: k,
                device: alt,
            });
        }
        self.try_start(alt);
    }

    /// Device selection for `kernel`: affinity-with-spill. Each kernel has
    /// a *home* device among its platform (stable hash), which keeps GPU
    /// batches of the same kernel together and avoids convoy effects from
    /// interleaving kernel types; heavily loaded homes spill to the least
    /// loaded peer. FPGA devices loaded with a different bitstream are
    /// additionally charged the reconfiguration time. Returns `None` when
    /// every device of the required kind is currently failed (the caller
    /// strands the work); an outright-missing platform is still a panic —
    /// that is a planning bug, not a runtime fault. `exclude` removes one
    /// device from consideration (hedged dispatch must not double down on
    /// the device holding the primary copy).
    fn choose_device(&self, kernel: KernelId, exclude: Option<usize>) -> Option<usize> {
        let imp = self.policy.of(kernel);
        // Pass 1 (allocation-free: the peer set is characterized by
        // counters instead of materialized): count devices of the kind,
        // healthy non-excluded peers, and — for FPGAs — peers already
        // configured for this kernel and whether all of those are
        // backlogged.
        let mut any_of_kind = false;
        let mut n_peers = 0usize;
        let mut n_matching = 0usize;
        let mut all_backlogged = true;
        for (i, d) in self.devices.iter().enumerate() {
            if d.kind != imp.kind {
                continue;
            }
            any_of_kind = true;
            if !d.healthy || Some(i) == exclude {
                continue;
            }
            n_peers += 1;
            if imp.kind == DeviceKind::Fpga && d.loaded == Some((kernel, imp.impl_index)) {
                n_matching += 1;
                if d.queue.len() < 3 {
                    all_backlogged = false;
                }
            }
        }
        assert!(
            any_of_kind,
            "no device of kind {} in pool for kernel {kernel}",
            imp.kind
        );
        if n_peers == 0 {
            return None;
        }
        // FPGA dispatch is bitstream-sticky: transient queue pressure must
        // not trigger reconfiguration storms (each swap poisons another
        // kernel's home), so only devices already configured for this
        // kernel are eligible — unless none exists (fresh policy), in
        // which case any peer may be reconfigured once. Expansion
        // hysteresis: only consider reconfiguring an additional device
        // when every configured device already has a sustained backlog.
        let restrict = imp.kind == DeviceKind::Fpga && n_matching > 0 && !all_backlogged;
        let eligible = |i: usize, d: &DeviceState| {
            d.kind == imp.kind
                && d.healthy
                && Some(i) != exclude
                && (!restrict || d.loaded == Some((kernel, imp.impl_index)))
        };
        // Pass 2: the home device — the (kernel mod peers)-th eligible
        // device in index order, same as indexing the former peers Vec.
        let n_eligible = if restrict { n_matching } else { n_peers };
        let home_pos = kernel.0 % n_eligible;
        let mut home = usize::MAX;
        let mut pos = 0usize;
        for (i, d) in self.devices.iter().enumerate() {
            if !eligible(i, d) {
                continue;
            }
            if pos == home_pos {
                home = i;
                break;
            }
            pos += 1;
        }
        // Pass 3: least-loaded eligible device (strict-less, first min).
        let mut best: Option<(f64, usize)> = None;
        for (i, d) in self.devices.iter().enumerate() {
            if !eligible(i, d) {
                continue;
            }
            // A derated (throttled) device works through its backlog
            // `derate`× slower, so weight its queue accordingly.
            let mut score =
                d.busy_until.max(self.now) + d.queue.len() as f64 * imp.service_ms * d.derate;
            if i != home && d.kind == DeviceKind::Gpu {
                // GPU spill only pays off when the home is congested by
                // more than one average execution (batch locality); FPGA
                // spill cost is the reconfiguration term below.
                score += imp.latency_ms;
            }
            if d.kind == DeviceKind::Fpga
                && d.loaded.is_some()
                && d.loaded != Some((kernel, imp.impl_index))
            {
                score += d.reconfig_ms;
            }
            if best.is_none_or(|(bs, _)| score < bs) {
                best = Some((score, i));
            }
        }
        Some(best.map(|(_, i)| i).expect("non-empty peers"))
    }

    /// Start the next batch on device `dev` if it is healthy, idle, and
    /// has work.
    fn try_start(&mut self, dev: usize) {
        let now = self.now;
        if !self.devices[dev].healthy {
            return;
        }
        if self.devices[dev].executing && self.devices[dev].busy_until > now + 1e-12 {
            return;
        }
        // Drop completed entries from the in-flight book before committing
        // to more work (lazy pruning keeps completion O(1)).
        self.devices[dev]
            .inflight
            .retain(|e| e.completion_ms > now + 1e-12);
        let Some(front) = self.devices[dev].queue.front().copied() else {
            self.devices[dev].executing = false;
            return;
        };
        let imp: KernelImpl = *self.policy.of(front.kernel);

        // Deliberate batch formation (DjiNN-style): hold a partial GPU
        // batch open while (a) the oldest request's slack still allows it
        // and (b) the current arrival rate makes further same-kernel work
        // likely within that slack. At light load (b) fails and requests
        // start immediately, keeping the low-load tail flat.
        let budget = self.wait_budget.get(front.kernel.0).copied().unwrap_or(0.0);
        if budget > 0.0 {
            let same: u32 = self.devices[dev]
                .queue
                .iter()
                .filter(|i| i.kernel == front.kernel)
                .count()
                .try_into()
                .unwrap_or(u32::MAX);
            let deadline = self.requests.arrival_ms(front.req) + budget;
            // Queue gate: only hold the batch open when a partial batch is
            // already forming (the device is trending throughput-bound);
            // a lone request at moderate load starts immediately.
            if same >= 2 && same < imp.batch && deadline > now + 1e-9 && self.arrival_rate > 0.0 {
                let kind = self.devices[dev].kind;
                let peers = self
                    .devices
                    .iter()
                    .filter(|x| x.kind == kind)
                    .count()
                    .max(1) as f64;
                // Wait only when the batch is expected to fill within the
                // remaining slack; otherwise launch the partial batch now.
                // The rate EWMA only updates on arrivals, so after a burst
                // it stays frozen at its peak and predicts imminent fill
                // forever; the gap since the last arrival is evidence too,
                // and once it exceeds the EWMA's own expected inter-arrival
                // the gap is the better estimate.
                let gap = (now - self.last_arrival_ms).max(0.01);
                let rate = self.arrival_rate.min(1.0 / gap);
                let fill_ms = f64::from(imp.batch - same) / (rate / peers);
                if now + fill_ms <= deadline {
                    let wake = (now + 1.2 * fill_ms).min(deadline);
                    self.devices[dev].executing = false;
                    self.push(wake, EventKind::DeviceFree { dev });
                    return;
                }
            }
        }
        // Gather up to `batch` queued items of the same kernel (GPU
        // batching); preserve the order of everything else. Both buffers
        // are engine-owned scratch, so steady-state batch formation
        // allocates nothing (the drained queue becomes the next scratch).
        let mut batch = std::mem::take(&mut self.batch_scratch);
        let mut rest = std::mem::take(&mut self.rest_scratch);
        batch.clear();
        rest.clear();
        let d = &mut self.devices[dev];
        while let Some(item) = d.queue.pop_front() {
            if item.kernel == front.kernel && batch.len() < imp.batch as usize {
                batch.push(item);
            } else {
                rest.push_back(item);
            }
        }
        self.rest_scratch = std::mem::replace(&mut d.queue, rest);

        let mut start = now;
        if d.kind == DeviceKind::Fpga && d.loaded != Some((front.kernel, imp.impl_index)) {
            if d.loaded.is_some() {
                d.reconfigs += 1;
            }
            start += d.reconfig_ms;
            d.loaded = Some((front.kernel, imp.impl_index));
        }

        let n = u32::try_from(batch.len()).unwrap_or(u32::MAX);
        {
            let ks = &mut self.kernel_stats[front.kernel.0];
            ks.executions += 1;
            ks.requests += batch.len();
            for item in &batch {
                ks.queue_wait_ms += (start - item.ready_ms).max(0.0);
            }
        }
        let exec = imp.exec_ms(n) * d.derate;
        let completion = start + exec;
        let busy_until = start + imp.occupancy_ms(n) * d.derate;
        if let Some(tl) = &mut self.timeline {
            if tl.len() < 100_000 {
                tl.push(ExecutionRecord {
                    device: dev,
                    kind: d.kind,
                    kernel: front.kernel,
                    impl_index: imp.impl_index,
                    start_ms: now,
                    reconfig_ms: start - now,
                    completion_ms: completion,
                    batch: batch.len(),
                });
            }
        }
        self.kernel_stats[front.kernel.0].busy_ms += busy_until - now;
        d.account_busy(now, busy_until, imp.active_power_w);
        self.booked_busy_mj += imp.active_power_w * (busy_until - now).max(0.0);
        let d = &mut self.devices[dev];
        d.idle_power_w = imp.idle_power_w;
        d.active_power_w = imp.active_power_w;
        d.executing = true;
        d.busy_until = busy_until;

        self.push(busy_until, EventKind::DeviceFree { dev });
        if self.recording() {
            self.obs(ObsEvent::ExecStart {
                device: dev,
                device_kind: match imp.kind {
                    DeviceKind::Gpu => "gpu",
                    DeviceKind::Fpga => "fpga",
                },
                kernel: front.kernel.0,
                impl_index: imp.impl_index,
                batch: batch.len(),
                reconfig_ms: start - now,
                busy_ms: busy_until - now,
                exec_ms: exec,
            });
        }
        if let Some(h) = self.config.lifecycle.hedge {
            // Feed the rolling stage-latency window that the hedge delay
            // quantile is computed over (dispatch-to-completion, queueing
            // included — hedges race the whole stage, not just execution).
            let w = &mut self.hedge_window[front.kernel.0];
            for item in &batch {
                if w.len() >= h.window.max(1) {
                    w.pop_front();
                }
                w.push_back(completion - item.ready_ms);
            }
        }
        for &item in &batch {
            let attempt = self.requests.attempt(item.req, item.kernel.0);
            if self.recording() {
                self.obs(ObsEvent::StageStart {
                    req: item.req,
                    kernel: item.kernel.0,
                    device: dev,
                    attempt,
                    hedge: item.hedge,
                    queue_wait_ms: (start - item.ready_ms).max(0.0),
                    service_ms: completion - start,
                });
            }
            self.devices[dev].inflight.push(InflightItem {
                item,
                attempt,
                completion_ms: completion,
            });
            self.push(
                completion,
                EventKind::Complete {
                    req: item.req,
                    kernel: item.kernel,
                    attempt,
                    hedge: item.hedge,
                },
            );
        }
        batch.clear();
        self.batch_scratch = batch;
    }

    fn complete(&mut self, req: usize, kernel: KernelId, attempt: u32, hedge: bool) {
        let now = self.now;
        // The request reached a terminal state (deadline, retry
        // exhaustion, node drain) while this completion was in flight.
        if self.requests.is_settled(req) {
            self.audit_stale += 1;
            return;
        }
        // A stale completion: the execution that scheduled this event
        // was killed by a fail-stop (or invalidated by a cancellation)
        // and the kernel was re-dispatched under a higher attempt
        // number — or the hedge twin already finished this stage.
        if self.requests.done(req, kernel.0) || self.requests.attempt(req, kernel.0) != attempt {
            self.audit_stale += 1;
            return;
        }
        self.requests.set_done(req, kernel.0);
        let kernels_left = self.requests.dec_kernels_left(req);
        let was_hedged = self.requests.hedged(req, kernel.0);
        if was_hedged {
            if hedge {
                self.retry_stats.hedge_wins += 1;
            }
            // First completion wins: cancel the losing copy wherever it is
            // and refund whatever busy time it still held booked.
            self.cancel_duplicates(req, kernel);
        }
        if self.recording() {
            self.obs(ObsEvent::StageComplete {
                req,
                kernel: kernel.0,
            });
        }
        let my_kind = self.policy.of(kernel).kind;
        let mut succs = std::mem::take(&mut self.succ_scratch);
        succs.clear();
        succs.extend(self.graph.successors(kernel).map(|e| (e.to, e.bytes)));
        for &(succ, bytes) in &succs {
            if self.requests.dec_remaining_preds(req, succ.0) == 0 {
                let succ_kind = self.policy.of(succ).kind;
                let transfer = if succ_kind == my_kind {
                    0.0
                } else {
                    self.config.pcie.transfer_ms(bytes)
                };
                self.push(now + transfer, EventKind::Dispatch { req, kernel: succ });
            }
        }
        succs.clear();
        self.succ_scratch = succs;
        if kernels_left == 0 {
            self.set_terminal(req, Outcome::Completed);
            let latency = now - self.requests.arrival_ms(req);
            Arc::make_mut(&mut self.latencies).push(latency);
            self.segment_latencies.push(latency);
            self.completed += 1;
            self.segment_completed += 1;
            if self.recording() {
                self.obs(ObsEvent::ReqComplete {
                    req,
                    latency_ms: latency,
                });
            }
        }
    }

    /// Move `req` to a terminal outcome, exactly once. A second terminal
    /// transition is counted as an audit violation and ignored.
    fn set_terminal(&mut self, req: usize, outcome: Outcome) {
        if self.requests.is_settled(req) {
            self.audit_double_terminal += 1;
            return;
        }
        self.requests.set_outcome(req, outcome);
        match outcome {
            Outcome::InFlight => unreachable!("terminal transition to InFlight"),
            Outcome::Completed => self.life_completed += 1,
            Outcome::TimedOut => {
                self.life_timed_out += 1;
                self.seg_timeouts += 1;
            }
            Outcome::Failed => {
                self.life_failed += 1;
                self.seg_failed += 1;
            }
            Outcome::Cancelled => self.life_cancelled += 1,
        }
        if self.recording() {
            // `Completed` is reported by the caller as `ReqComplete`
            // (which carries the latency); only the failure outcomes are
            // recorded here.
            match outcome {
                Outcome::TimedOut => self.obs(ObsEvent::ReqTimedOut { req }),
                Outcome::Failed => self.obs(ObsEvent::ReqFailed { req }),
                Outcome::Cancelled => self.obs(ObsEvent::ReqCancelled { req }),
                Outcome::InFlight | Outcome::Completed => {}
            }
        }
    }

    /// Abandon every copy of `req`'s outstanding work — queued, stranded,
    /// or in flight — and settle the request with `outcome`. In-flight
    /// executions are invalidated through the attempt counters (their
    /// scheduled completions go stale) and the busy time a now-empty
    /// batch still held booked is refunded.
    fn abort_request(&mut self, req: usize, outcome: Outcome) {
        let now = self.now;
        let mut touched = std::mem::take(&mut self.touched_scratch);
        touched.clear();
        for (i, d) in self.devices.iter_mut().enumerate() {
            let before = d.queue.len() + d.inflight.len();
            d.queue.retain(|it| it.req != req);
            if before != d.queue.len() + d.inflight.len() {
                touched.push(i);
            }
        }
        self.stranded.retain(|it| it.req != req);
        // Bump every stage's attempt: any completion still scheduled for
        // this request is now stale (belt and braces — the terminal
        // outcome alone already makes them stale).
        self.requests.bump_all_attempts(req);
        for (i, d) in self.devices.iter_mut().enumerate() {
            let before = d.inflight.len();
            d.inflight
                .retain(|e| !(e.item.req == req && e.completion_ms > now + 1e-12));
            if d.inflight.len() != before {
                touched.push(i);
            }
        }
        self.set_terminal(req, outcome);
        for &dev in &touched {
            self.cut_if_idle(dev);
        }
        touched.clear();
        self.touched_scratch = touched;
    }

    /// Remove the losing copies of a hedged stage after its first
    /// completion: queued duplicates are dropped, in-flight duplicates are
    /// invalidated (the `done` flag makes their completions stale), and
    /// devices whose batch just emptied get their booked busy time
    /// refunded.
    fn cancel_duplicates(&mut self, req: usize, kernel: KernelId) {
        let now = self.now;
        let mut touched = std::mem::take(&mut self.touched_scratch);
        touched.clear();
        for (i, d) in self.devices.iter_mut().enumerate() {
            let before = d.queue.len() + d.inflight.len();
            d.queue.retain(|it| !(it.req == req && it.kernel == kernel));
            d.inflight.retain(|e| {
                !(e.item.req == req && e.item.kernel == kernel && e.completion_ms > now + 1e-12)
            });
            if d.queue.len() + d.inflight.len() != before {
                touched.push(i);
            }
        }
        self.stranded
            .retain(|it| !(it.req == req && it.kernel == kernel));
        for &dev in &touched {
            self.cut_if_idle(dev);
        }
        touched.clear();
        self.touched_scratch = touched;
    }

    /// If device `dev` is mid-execution but every work item of its
    /// current batch has been cancelled, cut the execution short: refund
    /// the remaining pre-booked busy energy and free the device now.
    fn cut_if_idle(&mut self, dev: usize) {
        let now = self.now;
        let has_live = {
            let d = &self.devices[dev];
            if !d.healthy || !d.executing || d.busy_until <= now + 1e-12 {
                return;
            }
            d.inflight.iter().any(|e| {
                e.completion_ms > now + 1e-12
                    && !self.requests.is_settled(e.item.req)
                    && !self.requests.done(e.item.req, e.item.kernel.0)
                    && self.requests.attempt(e.item.req, e.item.kernel.0) == e.attempt
            })
        };
        if has_live {
            return;
        }
        let d = &mut self.devices[dev];
        let cut = d.busy_until.min(d.accounted_to_ms) - now;
        if cut > 0.0 {
            let refund = d.active_power_w * cut;
            d.busy_energy_mj -= refund;
            d.busy_ms -= cut;
            d.accounted_to_ms = now;
            self.refunded_busy_mj += refund;
        }
        d.executing = false;
        d.busy_until = now;
        self.push(now, EventKind::DeviceFree { dev });
    }

    /// Discard all statistics gathered so far (latencies, counters, and
    /// energy books) and start a fresh measurement window at the current
    /// simulation time. Queue and device state is preserved — this is how
    /// warmup is excluded from steady-state measurements.
    pub fn reset_accounting(&mut self) {
        for d in &mut self.devices {
            d.account_idle_until(self.now);
            d.busy_energy_mj = 0.0;
            d.idle_energy_mj = 0.0;
            d.busy_ms = 0.0;
        }
        self.stats_since = self.now;
        self.arrived = 0;
        self.completed = 0;
        Arc::make_mut(&mut self.latencies).clear();
        self.segment_latencies.clear();
        self.segment_arrived = 0;
        self.segment_completed = 0;
        for ks in &mut self.kernel_stats {
            *ks = KernelStats::default();
        }
        // Measurement boundaries are also when the settled request prefix
        // is reclaimed: over a long replay the arena stays bounded by the
        // in-flight population instead of growing with the trace.
        self.requests.compact();
    }

    /// Statistics since the last call (the system monitor's view): arrived
    /// and completed counts and the latency distribution of the segment.
    pub fn drain_segment(&mut self) -> (usize, usize, LatencyStats) {
        let stats = LatencyStats::from_samples(std::mem::take(&mut self.segment_latencies));
        let arrived = std::mem::replace(&mut self.segment_arrived, 0);
        let completed = std::mem::replace(&mut self.segment_completed, 0);
        (arrived, completed, stats)
    }

    /// Allocation-free [`drain_segment`](Self::drain_segment): swaps the
    /// segment's raw latency samples into `out` (clearing it first) so an
    /// interval-stepping driver can recycle one buffer per node instead of
    /// building a fresh digest every interval. Returns `(arrived,
    /// completed)`; percentiles come from the slice helpers
    /// ([`quantile_of`](crate::quantile_of) /
    /// [`violations_of`](crate::violations_of)), which match the digest
    /// bit-for-bit.
    pub fn drain_segment_into(&mut self, out: &mut Vec<f64>) -> (usize, usize) {
        out.clear();
        std::mem::swap(out, &mut self.segment_latencies);
        let arrived = std::mem::replace(&mut self.segment_arrived, 0);
        let completed = std::mem::replace(&mut self.segment_completed, 0);
        (arrived, completed)
    }

    /// Total queued work items across devices, plus work stranded by
    /// failures (the monitor's queue-length signal).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.devices.iter().map(|d| d.queue.len()).sum::<usize>() + self.stranded.len()
    }

    /// Schedule the events of `plan` as discrete fault events. Events
    /// scripted before the current time fire immediately (at "now").
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        for &event in plan.events() {
            assert!(
                event.device < self.devices.len(),
                "fault targets device {} but the pool has {}",
                event.device,
                self.devices.len()
            );
            let idx = self.faults.len();
            self.faults.push(event);
            self.push(event.at_ms.max(self.now), EventKind::Fault { idx });
        }
    }

    /// The pool of currently healthy devices — what the runtime should
    /// re-plan against after a failure.
    #[must_use]
    pub fn available_pool(&self) -> Pool {
        let kinds: Vec<DeviceKind> = self
            .devices
            .iter()
            .filter(|d| d.healthy)
            .map(|d| d.kind)
            .collect();
        Pool::new(&kinds)
    }

    /// Number of currently healthy devices.
    #[must_use]
    pub fn healthy_devices(&self) -> usize {
        self.devices.iter().filter(|d| d.healthy).count()
    }

    /// Fault events applied and work items retried since the last call
    /// (the monitor's fault signal).
    pub fn take_fault_counts(&mut self) -> (usize, usize) {
        (
            std::mem::replace(&mut self.seg_fault_events, 0),
            std::mem::replace(&mut self.seg_retries, 0),
        )
    }

    /// Abandon every request that has not completed yet: clear device
    /// queues and in-flight books, drop stranded work, and mark the
    /// victims finished so their already-scheduled completion events
    /// become stale. Returns how many requests were abandoned — the
    /// traffic a front-end router must redistribute to other nodes when
    /// it drains this one (e.g. after a whole-node fail-stop).
    ///
    /// Scripted fault events stay queued, so a later recovery still
    /// returns the devices to service.
    /// Calling it on an empty or already-drained simulator — including a
    /// second consecutive call — is a deterministic no-op: nothing is
    /// double-counted and no busy energy is refunded twice.
    pub fn cancel_pending(&mut self) -> usize {
        let now = self.now;
        for d in &mut self.devices {
            d.queue.clear();
            d.inflight.clear();
            // A healthy device cut off mid-execution gets its remaining
            // pre-booked busy energy refunded (the work will never
            // finish); a failed device was already refunded at the
            // fail-stop. `executing` guards double refunds: the first
            // call clears it, so a second call skips the block.
            if d.healthy && d.executing && d.busy_until > now + 1e-12 {
                let cut = d.busy_until.min(d.accounted_to_ms) - now;
                if cut > 0.0 {
                    let refund = d.active_power_w * cut;
                    d.busy_energy_mj -= refund;
                    d.busy_ms -= cut;
                    d.accounted_to_ms = now;
                    self.refunded_busy_mj += refund;
                }
                d.executing = false;
                d.busy_until = now;
            }
        }
        self.stranded.clear();
        let mut cancelled = 0;
        for req in self.requests.live_range() {
            if !self.requests.is_settled(req) {
                cancelled += 1;
                // Stale-ify every scheduled completion of the victim.
                self.requests.bump_all_attempts(req);
                self.set_terminal(req, Outcome::Cancelled);
            }
        }
        cancelled
    }

    /// Re-dispatch work stranded by failures (called when a recovery or a
    /// policy change may have made it dispatchable again).
    fn redispatch_stranded(&mut self) {
        let stranded = std::mem::take(&mut self.stranded);
        let now = self.now;
        for item in stranded {
            self.push(
                now,
                EventKind::Dispatch {
                    req: item.req,
                    kernel: item.kernel,
                },
            );
        }
    }

    /// Apply scripted fault `idx` at the current time.
    fn apply_fault(&mut self, idx: usize) {
        let FaultEvent { device, kind, .. } = self.faults[idx];
        let now = self.now;
        match kind {
            FaultKind::FailStop => {
                if !self.devices[device].healthy {
                    return; // already down
                }
                self.fault_failures += 1;
                self.seg_fault_events += 1;
                if self.recording() {
                    self.obs(ObsEvent::Fault {
                        device,
                        kind: "fail-stop",
                    });
                }
                let mut queued_victims: Vec<WorkItem> = Vec::new();
                {
                    let d = &mut self.devices[device];
                    // The busy-energy account was pre-booked to the end of
                    // the running execution; refund the part the failure
                    // cuts off — a dead board draws nothing.
                    if d.executing && d.busy_until > now {
                        let cut = d.busy_until.min(d.accounted_to_ms) - now;
                        if cut > 0.0 {
                            let refund = d.active_power_w * cut;
                            d.busy_energy_mj -= refund;
                            d.busy_ms -= cut;
                            d.accounted_to_ms = now;
                            self.refunded_busy_mj += refund;
                        }
                    }
                    d.account_idle_until(now);
                    d.healthy = false;
                    d.executing = false;
                    d.busy_until = now;
                    d.loaded = None;
                    d.idle_power_w = 0.0;
                    queued_victims.extend(d.queue.drain(..));
                }
                // Kill the in-flight batch: bump each victim's attempt so
                // its scheduled completion becomes stale, then retry it.
                let mut to_retry: Vec<WorkItem> = Vec::new();
                let inflight = std::mem::take(&mut self.devices[device].inflight);
                for entry in inflight {
                    let req = entry.item.req;
                    let k = entry.item.kernel.0;
                    // A settled request never holds a live future
                    // completion (the settling path invalidated it), so
                    // the settled check short-circuits before any
                    // per-kernel state is touched.
                    if entry.completion_ms > now + 1e-12
                        && !self.requests.is_settled(req)
                        && !self.requests.done(req, k)
                        && self.requests.attempt(req, k) == entry.attempt
                    {
                        self.requests.bump_attempt(req, k);
                        to_retry.push(entry.item);
                    }
                }
                match self.config.lifecycle.retry {
                    // Legacy: re-dispatch everything immediately, without
                    // bound; queued victims keep their attempt counter.
                    RetryPolicy::Immediate => {
                        to_retry.extend(queued_victims);
                        self.retry_stats.device_retries += to_retry.len();
                        self.seg_retries += to_retry.len();
                        for item in to_retry {
                            self.push(
                                now,
                                EventKind::Dispatch {
                                    req: item.req,
                                    kernel: item.kernel,
                                },
                            );
                        }
                    }
                    RetryPolicy::Backoff(policy) => {
                        // Queued (never-started) victims also count this
                        // kill against their stage's retry budget, so the
                        // bound is uniform across queue positions.
                        for item in &queued_victims {
                            self.requests.bump_attempt(item.req, item.kernel.0);
                        }
                        to_retry.extend(queued_victims);
                        for item in to_retry {
                            if self.requests.is_settled(item.req) {
                                continue; // settled while the kill ran
                            }
                            let n = self.requests.attempt(item.req, item.kernel.0);
                            if n > policy.max_retries {
                                self.retry_stats.exhausted += 1;
                                self.abort_request(item.req, Outcome::Failed);
                                continue;
                            }
                            self.retry_stats.device_retries += 1;
                            self.seg_retries += 1;
                            let key = ((item.req as u64) << 20) | item.kernel.0 as u64;
                            let delay = policy.delay_ms(n, key);
                            self.push(
                                now + delay,
                                EventKind::Dispatch {
                                    req: item.req,
                                    kernel: item.kernel,
                                },
                            );
                        }
                    }
                }
            }
            FaultKind::Slowdown { factor } => {
                let d = &mut self.devices[device];
                if d.healthy {
                    d.derate = factor.max(1.0);
                    self.seg_fault_events += 1;
                    if self.recording() {
                        self.obs(ObsEvent::Fault {
                            device,
                            kind: "slowdown",
                        });
                    }
                }
            }
            FaultKind::Recover => {
                let was_down = !self.devices[device].healthy;
                {
                    let d = &mut self.devices[device];
                    d.derate = 1.0;
                    if was_down {
                        d.healthy = true;
                        d.executing = false;
                        d.busy_until = now;
                        // The board rejoins cold at its configured idle
                        // power; energy accounting resumes from now.
                        d.accounted_to_ms = d.accounted_to_ms.max(now);
                        d.idle_power_w = match d.kind {
                            DeviceKind::Gpu => self.config.gpu_idle_w,
                            DeviceKind::Fpga => self.config.fpga_idle_w,
                        };
                    }
                }
                if was_down {
                    self.seg_fault_events += 1;
                    self.apply_idle_floors();
                    if self.recording() {
                        self.obs(ObsEvent::Fault {
                            device,
                            kind: "recover",
                        });
                    }
                }
                self.redispatch_stranded();
                self.push(now, EventKind::DeviceFree { dev: device });
            }
        }
    }

    /// Close the books at time `t` (≥ now) and produce the report.
    /// The simulator can continue afterwards, but energy accounting is
    /// simplest when `finish` is called once at the end.
    pub fn finish(&mut self, t: f64) -> SimReport {
        self.advance_to(t);
        let end = t.max(self.now);
        let duration_ms = (end - self.stats_since).max(1e-9);
        let mut energy_mj = 0.0;
        let mut devices = Vec::with_capacity(self.devices.len());
        for d in &mut self.devices {
            let e = d.finish(end);
            energy_mj += e;
            devices.push(DeviceStats {
                kind: d.kind,
                utilization: d.utilization(duration_ms),
                energy_j: e / 1000.0,
                reconfigs: d.reconfigs,
            });
        }
        let latency = LatencyStats::from_shared(&self.latencies, &mut self.lat_scratch);
        let qos_violation_ratio = latency.violation_ratio(self.config.latency_bound_ms);
        SimReport {
            duration_ms,
            arrived: self.arrived,
            completed: self.completed,
            qos_violation_ratio,
            avg_power_w: if duration_ms > 0.0 {
                energy_mj / duration_ms
            } else {
                0.0
            },
            energy_j: energy_mj / 1000.0,
            throughput_rps: if duration_ms > 0.0 {
                self.completed as f64 * 1000.0 / duration_ms
            } else {
                0.0
            },
            latency,
            devices,
            kernels: self.kernel_stats.clone(),
            device_failures: self.fault_failures,
            retry: self.retry_stats,
            timed_out: self.life_timed_out,
        }
    }

    /// Requests timed out and failed since the last call (the monitor's
    /// lifecycle signal).
    pub fn take_lifecycle_counts(&mut self) -> (usize, usize) {
        (
            std::mem::replace(&mut self.seg_timeouts, 0),
            std::mem::replace(&mut self.seg_failed, 0),
        )
    }

    /// Milliseconds of deadline budget request `req` has left (∞ when
    /// deadlines are disabled, 0 when the deadline has passed).
    ///
    /// # Panics
    /// Panics if `req` was never enqueued, or if it settled before the
    /// last [`reset_accounting`](Self::reset_accounting) (settled request
    /// state is compacted away at measurement boundaries).
    #[must_use]
    pub fn remaining_budget_ms(&self, req: usize) -> f64 {
        (self.requests.deadline_ms(req) - self.now).max(0.0)
    }

    /// Cumulative re-issue ledger since construction (also embedded in
    /// [`SimReport`] by [`finish`](Self::finish)).
    #[must_use]
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// Lifetime conservation accounting for invariant checking — see
    /// [`AuditReport`]. Counters are never reset (they survive
    /// [`reset_accounting`](Self::reset_accounting)), so the report covers
    /// the whole life of the simulator.
    #[must_use]
    pub fn audit(&self) -> AuditReport {
        AuditReport {
            admitted: self.life_admitted,
            completed: self.life_completed,
            timed_out: self.life_timed_out,
            failed: self.life_failed,
            cancelled: self.life_cancelled,
            pending: self.requests.pending(),
            stale_completions: self.audit_stale,
            double_terminal: self.audit_double_terminal,
            clock_regressions: self.audit_clock_regressions,
            booked_busy_mj: self.booked_busy_mj,
            refunded_busy_mj: self.refunded_busy_mj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::{BackoffPolicy, HedgeConfig};
    use poly_ir::{KernelBuilder, KernelGraphBuilder, OpFunc, PatternKind, Shape};

    fn graph2() -> KernelGraph {
        let k = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap();
        KernelGraphBuilder::new("app")
            .kernel(k.clone())
            .kernel(k.with_name("b"))
            .edge("a", "b", 1 << 20)
            .build()
            .unwrap()
    }

    fn gpu_impl(kernel: usize, latency: f64, batch: u32) -> KernelImpl {
        KernelImpl {
            kernel: KernelId(kernel),
            kind: DeviceKind::Gpu,
            impl_index: 0,
            latency_ms: latency,
            latency_single_ms: latency / f64::from(batch.max(1)) * 1.5,
            service_ms: latency / f64::from(batch.max(1)),
            batch,
            active_power_w: 200.0,
            idle_power_w: 40.0,
        }
    }

    fn fpga_impl(kernel: usize, latency: f64) -> KernelImpl {
        KernelImpl {
            kernel: KernelId(kernel),
            kind: DeviceKind::Fpga,
            impl_index: 0,
            latency_ms: latency,
            latency_single_ms: latency,
            service_ms: latency * 0.9,
            batch: 1,
            active_power_w: 25.0,
            idle_power_w: 5.0,
        }
    }

    fn sim(policy: Vec<KernelImpl>, pool: Pool) -> Simulator {
        Simulator::new(
            graph2(),
            &pool,
            Policy::from_impls(policy),
            SimConfig::default(),
        )
    }

    #[test]
    fn single_request_latency_is_sum_plus_transfer() {
        let mut s = sim(
            vec![gpu_impl(0, 10.0, 1), fpga_impl(1, 20.0)],
            Pool::heterogeneous(1, 1),
        );
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1);
        // 10 (a on GPU) + pcie(1 MiB) + 20 (b; bitstream preloaded).
        let expect = 10.0 + PcieLink::gen3_x16().transfer_ms(1 << 20) + 20.0;
        assert!(
            (r.latency.max() - expect).abs() < 1e-6,
            "{} vs {expect}",
            r.latency.max()
        );
    }

    #[test]
    fn same_platform_pays_no_transfer_and_no_second_reconfig() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 20.0)],
            Pool::heterogeneous(0, 2),
        );
        s.enqueue_arrivals(&[0.0, 1000.0]);
        s.drain();
        let r = s.finish(5000.0);
        assert_eq!(r.completed, 2);
        // Second request reuses the loaded bitstreams: latency = 10 + 20
        // with no reconfig (each device keeps its kernel).
        let second = r.latency.quantile(0.1).min(r.latency.max());
        assert!(second <= r.latency.max());
        assert!((r.latency.quantile(0.01) - 30.0).abs() < 1.0 || r.latency.max() > 30.0);
        let total_reconfigs: usize = r.devices.iter().map(|d| d.reconfigs).sum();
        assert_eq!(total_reconfigs, 0, "no bitstream swap needed");
    }

    #[test]
    fn gpu_batches_under_load() {
        // One GPU, batchable kernel: 8 simultaneous arrivals should finish
        // far faster than 8 sequential batch-1 executions.
        let one = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap();
        let g = KernelGraphBuilder::new("app").kernel(one).build().unwrap();
        let imp = KernelImpl {
            kernel: KernelId(0),
            kind: DeviceKind::Gpu,
            impl_index: 0,
            latency_ms: 80.0,
            latency_single_ms: 20.0,
            service_ms: 10.0,
            batch: 8,
            active_power_w: 200.0,
            idle_power_w: 40.0,
        };
        let mut s = Simulator::new(
            g,
            &Pool::heterogeneous(1, 0),
            Policy::from_impls(vec![imp]),
            SimConfig::default(),
        );
        s.enqueue_arrivals(&[0.0; 8]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 8);
        // First arrival starts a batch of 1 (20 ms); the other 7 form one
        // batch afterwards. Max latency ≈ 20 + exec(7) < 8 × 20.
        assert!(r.latency.max() < 8.0 * 20.0, "{}", r.latency.max());
    }

    #[test]
    fn queueing_grows_tail_latency() {
        // Single-kernel app on one FPGA (service 9 ms): arrivals every
        // 8 ms overload the device, arrivals every 25 ms do not.
        let one = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap();
        let g = KernelGraphBuilder::new("app").kernel(one).build().unwrap();
        let lat_at = |interval_ms: f64| {
            let mut s = Simulator::new(
                g.clone(),
                &Pool::heterogeneous(0, 1),
                Policy::from_impls(vec![fpga_impl(0, 10.0)]),
                SimConfig::default(),
            );
            let arrivals: Vec<f64> = (0..300).map(|i| i as f64 * interval_ms).collect();
            s.enqueue_arrivals(&arrivals);
            s.drain();
            s.finish(100_000.0).latency.p99()
        };
        assert!(lat_at(8.0) > lat_at(25.0) * 2.0);
    }

    #[test]
    fn reconfiguration_thrash_is_modelled() {
        // One FPGA alternating two kernels pays the bitstream swap each
        // time — a second FPGA eliminates the thrash entirely.
        let run = |fpgas: usize| {
            let mut s = sim(
                vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
                Pool::heterogeneous(0, fpgas),
            );
            s.enqueue_arrivals(&(0..20).map(|i| f64::from(i) * 1000.0).collect::<Vec<_>>());
            s.drain();
            s.finish(60_000.0)
        };
        let thrash = run(1);
        let clean = run(2);
        let thrash_reconfigs: usize = thrash.devices.iter().map(|d| d.reconfigs).sum();
        let clean_reconfigs: usize = clean.devices.iter().map(|d| d.reconfigs).sum();
        assert!(thrash_reconfigs >= 10, "{thrash_reconfigs}");
        assert_eq!(clean_reconfigs, 0);
        // Median: every thrashing request pays two swaps; the clean setup
        // only pays the initial bitstream loads on the first request.
        assert!(thrash.latency.p50() > clean.latency.p50() * 5.0);
    }

    #[test]
    fn power_integrates_idle_plus_active() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
            Pool::heterogeneous(0, 1),
        );
        // No arrivals at all: pure idle for 1 s at the preloaded
        // bitstream's idle power (5 W in the test implementation).
        let r = s.finish(1000.0);
        assert!((r.avg_power_w - 5.0).abs() < 1e-9);
        assert!((r.energy_j - 5.0).abs() < 1e-9);
    }

    #[test]
    fn violation_ratio_reflects_bound() {
        let mut s = sim(
            vec![fpga_impl(0, 150.0), fpga_impl(1, 150.0)],
            Pool::heterogeneous(0, 2),
        );
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(10_000.0);
        // 150 + reconfig 220 + transfer... way over the 200 ms bound.
        assert_eq!(r.qos_violation_ratio, 1.0);
    }

    #[test]
    fn segment_drain_resets_counters() {
        let mut s = sim(
            vec![fpga_impl(0, 5.0), fpga_impl(1, 5.0)],
            Pool::heterogeneous(0, 2),
        );
        s.enqueue_arrivals(&[0.0, 1.0]);
        s.advance_to(5_000.0);
        let (a1, c1, _) = s.drain_segment();
        assert_eq!(a1, 2);
        assert_eq!(c1, 2);
        let (a2, c2, l2) = s.drain_segment();
        assert_eq!((a2, c2), (0, 0));
        assert!(l2.is_empty());
    }

    #[test]
    fn policy_swap_changes_future_executions() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
            Pool::heterogeneous(1, 2),
        );
        s.enqueue_arrivals(&[0.0]);
        s.advance_to(2_000.0);
        // Swap kernel 0 to the GPU for future requests.
        s.set_policy(Policy::from_impls(vec![
            gpu_impl(0, 12.0, 2),
            fpga_impl(1, 10.0),
        ]));
        s.enqueue_arrivals(&[2_000.0]);
        s.drain();
        let r = s.finish(10_000.0);
        assert_eq!(r.completed, 2);
        let gpu = r
            .devices
            .iter()
            .find(|d| d.kind == DeviceKind::Gpu)
            .unwrap();
        assert!(gpu.utilization > 0.0, "GPU executed after the swap");
    }

    #[test]
    fn timeline_records_every_execution() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
            Pool::heterogeneous(0, 2),
        );
        s.record_timeline(true);
        s.enqueue_arrivals(&[0.0, 1.0]);
        s.drain();
        let tl = s.timeline().to_vec();
        // 2 requests × 2 kernels = 4 executions (batch = 1 each).
        assert_eq!(tl.len(), 4);
        for r in &tl {
            assert!(r.completion_ms > r.start_ms);
            assert_eq!(r.batch, 1);
            assert!(r.reconfig_ms >= 0.0);
        }
        // Recording can be turned off again.
        s.record_timeline(false);
        assert!(s.timeline().is_empty());
    }

    #[test]
    fn kernel_breakdown_accounts_every_request() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
            Pool::heterogeneous(0, 2),
        );
        s.enqueue_arrivals(&[0.0, 1.0, 2.0]);
        s.drain();
        let r = s.finish(10_000.0);
        assert_eq!(r.kernels.len(), 2);
        for ks in &r.kernels {
            assert_eq!(ks.requests, 3, "{ks:?}");
            assert!(ks.executions >= 1);
            assert!(ks.busy_ms > 0.0);
            assert!(ks.mean_batch() >= 1.0);
            assert!(ks.mean_wait_ms() >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "no device of kind")]
    fn missing_platform_panics() {
        let mut s = sim(
            vec![gpu_impl(0, 10.0, 1), fpga_impl(1, 10.0)],
            Pool::heterogeneous(0, 1), // no GPU!
        );
        s.enqueue_arrivals(&[0.0]);
        s.drain();
    }

    // --- fault injection ---------------------------------------------------

    fn graph1() -> KernelGraph {
        let k = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap();
        KernelGraphBuilder::new("app").kernel(k).build().unwrap()
    }

    #[test]
    fn fail_stop_retries_inflight_on_survivor() {
        // Two FPGAs, both preloaded with the kernel. The request starts on
        // its home device (0); device 0 dies mid-execution at t = 5 and the
        // work is retried on device 1, completing at 5 + 10 = 15.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0));
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1);
        assert_eq!(r.device_failures, 1);
        assert_eq!(r.retry.device_retries, 1);
        assert!(
            (r.latency.max() - 15.0).abs() < 1e-6,
            "retried completion at 15, got {}",
            r.latency.max()
        );
    }

    #[test]
    fn fail_stop_strands_until_recovery() {
        // The only GPU dies before the request arrives: the work strands
        // (no healthy device of its kind) until the recovery at t = 100
        // re-dispatches it.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(1, 0),
            Policy::from_impls(vec![gpu_impl(0, 20.0, 1)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0).recover(100.0, 0));
        s.enqueue_arrivals(&[10.0]);
        s.advance_to(50.0);
        assert_eq!(s.healthy_devices(), 0);
        assert!(s.available_pool().is_empty());
        assert_eq!(s.queued(), 1, "request parked while the pool is empty");
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1);
        assert!(
            r.latency.max() >= 90.0,
            "latency includes the outage window: {}",
            r.latency.max()
        );
    }

    #[test]
    fn slowdown_derates_execution_until_recovery() {
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().slow_down(0.0, 0, 2.0).recover(100.0, 0));
        s.enqueue_arrivals(&[0.0, 200.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 2);
        // Throttled request takes 2 × 10 ms; post-recovery one is nominal.
        assert!((r.latency.max() - 20.0).abs() < 1e-6, "{}", r.latency.max());
        assert!(
            (r.latency.quantile(0.01) - 10.0).abs() < 1e-6,
            "{}",
            r.latency.quantile(0.01)
        );
        assert_eq!(r.device_failures, 0, "a slowdown is not a fail-stop");
    }

    #[test]
    fn failed_device_draws_no_power() {
        // Idle FPGA at 5 W dies at t = 400: only 400 ms of idle energy is
        // accounted over the 1 s window.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(400.0, 0));
        let r = s.finish(1000.0);
        assert!((r.energy_j - 2.0).abs() < 1e-9, "{}", r.energy_j);
        assert!((r.avg_power_w - 2.0).abs() < 1e-9, "{}", r.avg_power_w);
    }

    #[test]
    fn available_pool_reflects_health() {
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(1, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(10.0, 0).recover(30.0, 0));
        s.advance_to(20.0);
        assert_eq!(s.available_pool(), Pool::heterogeneous(0, 2));
        assert_eq!(s.healthy_devices(), 2);
        s.advance_to(40.0);
        assert_eq!(s.available_pool(), Pool::heterogeneous(1, 2));
        assert_eq!(s.healthy_devices(), 3);
    }

    #[test]
    fn fault_counts_drain_like_segments() {
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0).recover(50.0, 0));
        s.enqueue_arrivals(&[0.0]);
        s.advance_to(100.0);
        let (events, retried) = s.take_fault_counts();
        assert_eq!(events, 2, "fail-stop + recovery");
        assert_eq!(retried, 1);
        assert_eq!(s.take_fault_counts(), (0, 0), "counts drained");
    }

    #[test]
    fn cancel_pending_abandons_incomplete_requests() {
        // Single FPGA, 10 ms service: at t = 25 the first two requests are
        // done and three are queued or in flight. Draining the node
        // abandons exactly those three; they never complete.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.enqueue_arrivals(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        s.advance_to(25.0);
        let cancelled = s.cancel_pending();
        assert_eq!(cancelled, 3);
        assert_eq!(s.queued(), 0, "queues drained");
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 2, "abandoned requests never complete");
        // A second drain has nothing left to cancel.
        assert_eq!(s.cancel_pending(), 0);
    }

    #[test]
    fn cancel_pending_preserves_scripted_recovery() {
        // The only device fails at t = 5 stranding the request; the router
        // drains the node, but the scripted recovery at t = 100 still
        // fires and the node serves fresh traffic afterwards.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0).recover(100.0, 0));
        s.enqueue_arrivals(&[0.0]);
        s.advance_to(50.0);
        assert_eq!(s.healthy_devices(), 0);
        assert_eq!(s.cancel_pending(), 1);
        s.advance_to(150.0);
        assert_eq!(s.healthy_devices(), 1, "recovery survives the drain");
        s.enqueue_arrivals(&[150.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1, "post-recovery traffic is served");
    }

    // --- batch-hold deferral gate ------------------------------------------

    /// One GPU, one batch-8 kernel with a 40 ms wait budget
    /// (0.6 × 200 ms bound − 80 ms full-batch latency).
    fn hold_sim() -> Simulator {
        let imp = KernelImpl {
            kernel: KernelId(0),
            kind: DeviceKind::Gpu,
            impl_index: 0,
            latency_ms: 80.0,
            latency_single_ms: 20.0,
            service_ms: 10.0,
            batch: 8,
            active_power_w: 200.0,
            idle_power_w: 40.0,
        };
        Simulator::new(
            graph1(),
            &Pool::heterogeneous(1, 0),
            Policy::from_impls(vec![imp]),
            SimConfig::default(),
        )
    }

    /// Queue two same-kernel requests directly (bypassing the arrival
    /// EWMA) so the `same >= 2` gate is reachable with a chosen
    /// `arrival_rate`. Marks the last arrival as "now" so the chosen
    /// rate reads as fresh, not stale.
    fn seed_two(s: &mut Simulator) {
        s.last_arrival_ms = s.now;
        for i in 0..2 {
            let req = s.requests.push(s.now, f64::INFINITY);
            assert_eq!(req, i);
            s.devices[0].queue.push_back(WorkItem {
                req,
                kernel: KernelId(0),
                ready_ms: s.now,
                hedge: false,
            });
        }
    }

    #[test]
    fn batch_hold_skipped_at_zero_arrival_rate() {
        let mut s = hold_sim();
        seed_two(&mut s);
        s.arrival_rate = 0.0;
        s.try_start(0);
        assert!(
            s.devices[0].executing,
            "zero arrival rate must launch immediately, not divide by zero"
        );
    }

    #[test]
    fn batch_hold_skipped_at_near_zero_arrival_rate() {
        // A vanishing rate passes the `> 0` gate but predicts an absurd
        // fill time, so the fill-within-slack check launches immediately.
        let mut s = hold_sim();
        seed_two(&mut s);
        s.arrival_rate = 1e-9;
        s.try_start(0);
        assert!(s.devices[0].executing);
    }

    #[test]
    fn batch_hold_skipped_when_rate_estimate_is_stale() {
        // The EWMA still reads one arrival per ms from an old burst, but
        // nothing has arrived for 12 ms. The gap refutes the estimate
        // (capped rate 1/12), the predicted fill blows the 40 ms budget,
        // and the partial batch launches instead of waiting it out.
        let mut s = hold_sim();
        seed_two(&mut s);
        s.now = 12.0;
        s.arrival_rate = 1.0;
        s.last_arrival_ms = 0.0;
        s.try_start(0);
        assert!(s.devices[0].executing, "stale rate must not hold the batch");
    }

    #[test]
    fn batch_hold_skipped_when_deadline_passed() {
        // Requests arrived at t = 0 with a 40 ms budget; at t = 50 the
        // deadline is in the past and the partial batch must launch now.
        let mut s = hold_sim();
        seed_two(&mut s);
        s.now = 50.0;
        s.arrival_rate = 1.0;
        s.try_start(0);
        assert!(s.devices[0].executing);
    }

    #[test]
    fn batch_hold_defers_when_fill_lands_exactly_on_deadline() {
        // fill_ms = (8 − 2) / (0.25 / 1 peer) = 24; at t = 16 the batch
        // fills exactly at the 40 ms deadline (16 + 24 = 40), which the
        // `<=` comparison accepts: the device waits, capped at the
        // deadline, then launches.
        let mut s = hold_sim();
        seed_two(&mut s);
        s.now = 16.0;
        s.last_arrival_ms = s.now; // fresh estimate: an arrival just landed
        s.arrival_rate = 0.25;
        s.try_start(0);
        assert!(!s.devices[0].executing, "batch held open");
        let wake = s.events.peek_time().expect("wake event queued");
        assert_eq!(wake, 40.0, "wake capped at the deadline");
        s.advance_to(40.0);
        assert!(s.devices[0].executing, "partial batch launched at deadline");
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 2);
    }

    #[test]
    fn burst_after_idle_launches_partial_batches_promptly() {
        // The arrival-rate EWMA only updates on arrivals, so after a
        // synchronized burst followed by silence it stays frozen at its
        // peak. A second burst must not be held the full wait budget on
        // the strength of that stale estimate: the gap since the last
        // arrival caps the rate, so partial batches launch promptly and
        // deadlined requests survive.
        let mut s = Simulator::new(
            graph2(),
            &Pool::heterogeneous(2, 2),
            Policy::from_impls(vec![gpu_impl(0, 40.0, 8), fpga_impl(1, 10.0)]),
            SimConfig {
                lifecycle: LifecycleConfig {
                    deadline_factor: Some(2.0),
                    retry: RetryPolicy::Backoff(BackoffPolicy::default()),
                    hedge: Some(HedgeConfig::default()),
                },
                ..SimConfig::default()
            },
        );
        let warm: Vec<f64> = (0..50).map(|i| i as f64 * 15.0).collect();
        s.enqueue_arrivals(&warm);
        s.advance_to(1000.0);
        let before = s.audit();
        // Quiet gap, then bursts of 32 simultaneous arrivals (the shape a
        // half-open breaker's probe quota or a drained backlog produces).
        for i in 0..5 {
            let t = 10_000.0 + i as f64 * 10_000.0;
            s.enqueue_arrivals(&vec![t; 32]);
            s.advance_to(t + 10_000.0);
        }
        let a = s.audit();
        a.check().expect("audit green");
        assert!(
            a.completed - before.completed > 100,
            "bursts must complete: {}",
            a.completed - before.completed
        );
    }

    // --- request lifecycle: deadlines, bounded retries, hedging ------------

    fn lifecycle_sim(lifecycle: LifecycleConfig) -> Simulator {
        Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig {
                lifecycle,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn deadline_cancels_doomed_work() {
        // Single FPGA, 10 ms latency, deadline = arrival + 25 ms
        // (0.125 × 200 ms bound). Ten simultaneous arrivals: the first two
        // complete (10, 20 ms); everything else is past its deadline at
        // t = 25 and is cancelled — queued and in-flight alike.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig {
                lifecycle: LifecycleConfig {
                    deadline_factor: Some(0.125),
                    ..LifecycleConfig::default()
                },
                ..SimConfig::default()
            },
        );
        s.enqueue_arrivals(&[0.0; 10]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 2);
        assert_eq!(r.timed_out, 8);
        let a = s.audit();
        a.check().expect("audit invariants hold");
        assert_eq!(a.completed, 2);
        assert_eq!(a.timed_out, 8);
        assert_eq!(a.pending, 0);
        assert!(
            a.refunded_busy_mj > 0.0,
            "the in-flight victim's booked busy energy is refunded"
        );
        assert!(a.refunded_busy_mj <= a.booked_busy_mj);
    }

    #[test]
    fn deadline_budget_propagates_across_stages() {
        // Two-stage DAG under a 200 ms bound with factor 1.0: the budget
        // shrinks monotonically as the request advances and is never
        // negative at any point the clock stops at.
        let mut s = Simulator::new(
            graph2(),
            &Pool::heterogeneous(0, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0), fpga_impl(1, 20.0)]),
            SimConfig {
                lifecycle: LifecycleConfig {
                    deadline_factor: Some(1.0),
                    ..LifecycleConfig::default()
                },
                ..SimConfig::default()
            },
        );
        s.enqueue_arrivals(&[0.0]);
        let mut last = s.remaining_budget_ms(0);
        assert!((last - 200.0).abs() < 1e-9, "{last}");
        for t in [5.0, 10.0, 15.0, 30.0, 250.0] {
            s.advance_to(t);
            let b = s.remaining_budget_ms(0);
            assert!(b >= 0.0, "budget never negative: {b}");
            assert!(b <= last + 1e-9, "budget monotone: {b} after {last}");
            last = b;
        }
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1, "in-budget request completes normally");
        assert_eq!(r.timed_out, 0);
        assert_eq!(s.remaining_budget_ms(0), 0.0, "budget exhausted at 250+");
        s.audit().check().expect("audit invariants hold");
    }

    #[test]
    fn backoff_delays_the_retry() {
        // Same scenario as `fail_stop_retries_inflight_on_survivor`, but
        // with jitter-free backoff: the retry waits base_ms = 5 ms, so the
        // victim completes at 5 (kill) + 5 (backoff) + 10 = 20 ms instead
        // of 15.
        let mut s = lifecycle_sim(LifecycleConfig {
            retry: RetryPolicy::Backoff(BackoffPolicy {
                jitter_frac: 0.0,
                ..BackoffPolicy::default()
            }),
            ..LifecycleConfig::default()
        });
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0));
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1);
        assert_eq!(r.retry.device_retries, 1);
        assert_eq!(r.retry.exhausted, 0);
        assert!(
            (r.latency.max() - 20.0).abs() < 1e-6,
            "retry delayed by 5 ms backoff, got {}",
            r.latency.max()
        );
        s.audit().check().expect("audit invariants hold");
    }

    #[test]
    fn exhausted_retry_budget_fails_the_request() {
        // One FPGA that keeps dying mid-execution. max_retries = 1: the
        // first kill retries (after 5 ms), the second kill exhausts the
        // budget and the request is failed — not retried forever.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig {
                lifecycle: LifecycleConfig {
                    retry: RetryPolicy::Backoff(BackoffPolicy {
                        max_retries: 1,
                        jitter_frac: 0.0,
                        ..BackoffPolicy::default()
                    }),
                    ..LifecycleConfig::default()
                },
                ..SimConfig::default()
            },
        );
        // Kill at 5 (retry dispatches at 10), recover at 6, kill again at
        // 12 mid-retry: attempt 2 > max_retries 1 → failed.
        s.inject_faults(
            &FaultPlan::new()
                .fail_stop(5.0, 0)
                .recover(6.0, 0)
                .fail_stop(12.0, 0)
                .recover(13.0, 0),
        );
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 0, "request failed, not completed");
        assert_eq!(r.retry.device_retries, 1);
        assert_eq!(r.retry.exhausted, 1);
        let a = s.audit();
        a.check().expect("audit invariants hold");
        assert_eq!(a.failed, 1);
        assert_eq!(a.pending, 0);
    }

    #[test]
    fn hedge_fires_against_slow_primary_and_wins() {
        // Warm the latency window with 8 nominal requests (~10 ms each),
        // then derate device 0 by 5×. The next request's primary copy
        // takes 50 ms; the hedge fires at ~10 ms on device 1 and wins.
        let mut s = lifecycle_sim(LifecycleConfig {
            hedge: Some(HedgeConfig {
                quantile: 0.95,
                min_delay_ms: 1.0,
                window: 16,
                min_samples: 4,
            }),
            ..LifecycleConfig::default()
        });
        let warmup: Vec<f64> = (0..8).map(|i| f64::from(i) * 50.0).collect();
        s.enqueue_arrivals(&warmup);
        s.advance_to(400.0);
        s.inject_faults(&FaultPlan::new().slow_down(400.0, 0, 5.0));
        s.enqueue_arrivals(&[450.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 9);
        assert_eq!(r.retry.hedges_fired, 1);
        assert_eq!(r.retry.hedge_wins, 1);
        // The hedged request finished well under the derated 50 ms.
        assert!(r.latency.max() < 40.0, "{}", r.latency.max());
        let a = s.audit();
        a.check().expect("audit invariants hold");
        assert_eq!(
            a.stale_completions, 1,
            "the losing copy's completion event arrives stale"
        );
        assert!(
            a.refunded_busy_mj > 0.0,
            "loser's booked busy time refunded"
        );
    }

    #[test]
    fn hedge_suppressed_when_every_alternate_is_backlogged() {
        // A synchronized burst puts queued work on both devices; every
        // stage out-waits the hedge delay, but duplicating into an
        // equally backlogged peer queue would only double the load. The
        // load guard must suppress all of them.
        let mut s = lifecycle_sim(LifecycleConfig {
            hedge: Some(HedgeConfig {
                quantile: 0.95,
                min_delay_ms: 1.0,
                window: 16,
                min_samples: 4,
            }),
            ..LifecycleConfig::default()
        });
        let warmup: Vec<f64> = (0..8).map(|i| f64::from(i) * 50.0).collect();
        s.enqueue_arrivals(&warmup);
        s.advance_to(400.0);
        s.enqueue_arrivals(&[450.0; 10]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 18);
        assert_eq!(
            r.retry.hedges_fired, 0,
            "no hedge may fire into a backlogged queue"
        );
        s.audit().check().expect("audit invariants hold");
    }

    #[test]
    fn cancel_pending_is_idempotent_and_refunds_once() {
        // Empty simulator: nothing to cancel.
        let mut empty = lifecycle_sim(LifecycleConfig::default());
        assert_eq!(empty.cancel_pending(), 0);
        assert_eq!(empty.cancel_pending(), 0);
        empty.audit().check().expect("empty audit holds");

        // Mid-execution drain: the running request is cancelled, its
        // remaining busy energy refunded exactly once; the second call is
        // a no-op (no double count, no double refund).
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.enqueue_arrivals(&[0.0, 1.0]);
        s.advance_to(5.0);
        assert_eq!(s.cancel_pending(), 2);
        let refunded = s.audit().refunded_busy_mj;
        assert!(refunded > 0.0, "in-flight execution refunded");
        assert_eq!(s.cancel_pending(), 0, "second drain is a no-op");
        assert_eq!(
            s.audit().refunded_busy_mj,
            refunded,
            "no double busy-energy refund"
        );
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 0);
        let a = s.audit();
        a.check().expect("audit invariants hold");
        assert_eq!(a.cancelled, 2);
        assert_eq!(a.pending, 0);
        // Energy books: 5 ms of busy time at 25 W remain accounted, the
        // rest of the 10 ms execution was refunded.
        assert!(a.refunded_busy_mj <= a.booked_busy_mj);
    }

    #[test]
    fn batch_hold_light_load_drains_without_deferral() {
        // Widely spaced arrivals never form a partial batch (`same >= 2`
        // fails), so every request starts immediately at single-request
        // latency.
        let mut s = hold_sim();
        let arrivals: Vec<f64> = (0..5).map(|i| f64::from(i) * 300.0).collect();
        s.enqueue_arrivals(&arrivals);
        s.drain();
        let r = s.finish(5000.0);
        assert_eq!(r.completed, 5);
        assert!(r.latency.max() < 30.0, "{}", r.latency.max());
    }
}
