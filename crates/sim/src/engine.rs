use crate::device::{DeviceState, DeviceStats, InflightItem, WorkItem};
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::{KernelImpl, LatencyStats, Policy, TotalF64};
use poly_device::{DeviceKind, PcieLink};
use poly_ir::{KernelGraph, KernelId};
use poly_sched::Pool;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Fraction of GPU board idle power drawn when the current policy leaves
/// the GPU unused (deep-idle clocks, memory parked).
pub const GPU_PARKED_FRACTION: f64 = 0.3;

/// Static simulation parameters of one leaf node.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// PCIe link paying inter-platform kernel transfers.
    pub pcie: PcieLink,
    /// QoS (p99) latency bound in milliseconds, for violation accounting.
    pub latency_bound_ms: f64,
    /// GPU board idle power before any kernel has run, in watts.
    pub gpu_idle_w: f64,
    /// FPGA board idle power before any bitstream is loaded, in watts.
    pub fpga_idle_w: f64,
    /// FPGA reconfiguration time in milliseconds.
    pub fpga_reconfig_ms: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            pcie: PcieLink::gen3_x16(),
            latency_bound_ms: 200.0,
            gpu_idle_w: 42.0,
            fpga_idle_w: 4.5,
            fpga_reconfig_ms: 220.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Arrival {
        req: usize,
    },
    Dispatch {
        req: usize,
        kernel: KernelId,
    },
    DeviceFree {
        dev: usize,
    },
    /// `attempt` invalidates completions of executions killed by a device
    /// fail-stop: a stale event whose attempt no longer matches the
    /// request's counter is ignored.
    Complete {
        req: usize,
        kernel: KernelId,
        attempt: u32,
    },
    /// Scripted fault (index into `Simulator::faults`).
    Fault {
        idx: usize,
    },
}

#[derive(Debug, Clone)]
struct ReqState {
    arrival_ms: f64,
    remaining_preds: Vec<usize>,
    done: Vec<bool>,
    kernels_left: usize,
    /// Per-kernel dispatch attempt, bumped when a fail-stop kills the
    /// in-flight execution so its scheduled completion becomes stale.
    attempt: Vec<u32>,
}

/// Per-kernel execution breakdown over a simulation window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelStats {
    /// Kernel executions started (batches, not requests).
    pub executions: usize,
    /// Requests served across those executions.
    pub requests: usize,
    /// Total queueing delay observed by requests before their kernel
    /// execution started, in milliseconds.
    pub queue_wait_ms: f64,
    /// Total device-occupancy time of this kernel's executions, in
    /// milliseconds.
    pub busy_ms: f64,
}

impl KernelStats {
    /// Mean batch size of the kernel's executions.
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.requests as f64 / self.executions as f64
        }
    }

    /// Mean per-request queueing delay in milliseconds.
    #[must_use]
    pub fn mean_wait_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.queue_wait_ms / self.requests as f64
        }
    }
}

/// One recorded kernel execution (timeline/Gantt entry), available when
/// recording is enabled via [`Simulator::record_timeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionRecord {
    /// Device index within the pool.
    pub device: usize,
    /// Device kind.
    pub kind: DeviceKind,
    /// Kernel executed.
    pub kernel: KernelId,
    /// Implementation index of the policy at execution time.
    pub impl_index: usize,
    /// When the device committed to the batch (reconfiguration included).
    pub start_ms: f64,
    /// Reconfiguration time paid before execution (FPGA bitstream swap).
    pub reconfig_ms: f64,
    /// When results complete.
    pub completion_ms: f64,
    /// Requests served by this execution.
    pub batch: usize,
}

/// Summary of one completed simulation (or simulation segment).
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated duration in milliseconds.
    pub duration_ms: f64,
    /// Requests that arrived.
    pub arrived: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Latency distribution of completed requests.
    pub latency: LatencyStats,
    /// Fraction of completed requests exceeding the QoS bound.
    pub qos_violation_ratio: f64,
    /// Mean node power over the duration (idle + active, all devices), W.
    pub avg_power_w: f64,
    /// Total energy over the duration, in joules.
    pub energy_j: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Per-device statistics.
    pub devices: Vec<DeviceStats>,
    /// Per-kernel execution breakdown, indexed by kernel id.
    pub kernels: Vec<KernelStats>,
    /// Fail-stop faults applied since construction.
    pub device_failures: usize,
    /// Work items requeued onto surviving devices after fail-stops,
    /// since construction.
    pub retried_requests: usize,
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} requests in {:.1} s: p50 {:.1} ms, p99 {:.1} ms, {:.1} RPS, {:.1} W ({:.2}% over bound)",
            self.completed,
            self.arrived,
            self.duration_ms / 1000.0,
            self.latency.p50(),
            self.latency.p99(),
            self.throughput_rps,
            self.avg_power_w,
            self.qos_violation_ratio * 100.0
        )
    }
}

/// Discrete-event simulator of one accelerator-outfitted leaf node.
///
/// Drive it by enqueuing arrivals
/// ([`enqueue_arrivals`](Self::enqueue_arrivals)), advancing time
/// ([`advance_to`](Self::advance_to)) — optionally swapping the execution
/// [`Policy`] between advances, which is how the Poly runtime's re-planning
/// loop is simulated — and finally collecting a [`SimReport`]
/// ([`finish`](Self::finish)).
#[derive(Debug, Clone)]
pub struct Simulator {
    graph: KernelGraph,
    policy: Policy,
    config: SimConfig,
    devices: Vec<DeviceState>,
    events: BinaryHeap<Reverse<(TotalF64, u64, EventKind)>>,
    requests: Vec<ReqState>,
    now: f64,
    seq: u64,
    arrived: usize,
    completed: usize,
    stats_since: f64,
    /// Per-kernel batch-wait budget (ms after request arrival by which the
    /// kernel must start to keep the QoS bound reachable); 0 disables
    /// waiting. Recomputed on policy changes.
    wait_budget: Vec<f64>,
    /// EWMA arrival rate (requests per ms), for adaptive batching.
    arrival_rate: f64,
    last_arrival_ms: f64,
    /// Completed-request latencies since the last accounting reset.
    /// Shared (copy-on-write) so report generation can snapshot it in
    /// O(1) instead of cloning the whole buffer.
    latencies: Arc<Vec<f64>>,
    /// Reusable workspace for quantile selection at report time.
    lat_scratch: Vec<f64>,
    segment_latencies: Vec<f64>,
    segment_arrived: usize,
    segment_completed: usize,
    kernel_stats: Vec<KernelStats>,
    timeline: Option<Vec<ExecutionRecord>>,
    /// Scripted faults, indexed by `EventKind::Fault`.
    faults: Vec<FaultEvent>,
    /// Work with no healthy device of the required kind, parked until a
    /// policy change or a recovery makes it dispatchable again.
    stranded: Vec<WorkItem>,
    /// Fail-stops applied since construction.
    fault_failures: usize,
    /// Work items retried after fail-stops, since construction.
    fault_retries: usize,
    /// Fault events applied since the last `take_fault_counts`.
    seg_fault_events: usize,
    /// Retried work items since the last `take_fault_counts`.
    seg_retries: usize,
}

impl Simulator {
    /// Create a simulator for `graph` on the devices of `pool`, executing
    /// per `policy`.
    #[must_use]
    pub fn new(graph: KernelGraph, pool: &Pool, policy: Policy, config: SimConfig) -> Self {
        let n_kernels = graph.len();
        let devices = pool
            .kinds()
            .iter()
            .map(|&kind| match kind {
                DeviceKind::Gpu => DeviceState::new(kind, 0.0, config.gpu_idle_w),
                DeviceKind::Fpga => {
                    DeviceState::new(kind, config.fpga_reconfig_ms, config.fpga_idle_w)
                }
            })
            .collect();
        let mut sim = Self {
            graph,
            policy,
            config,
            devices,
            events: BinaryHeap::new(),
            requests: Vec::new(),
            now: 0.0,
            seq: 0,
            arrived: 0,
            completed: 0,
            stats_since: 0.0,
            wait_budget: Vec::new(),
            arrival_rate: 0.0,
            last_arrival_ms: -1.0,
            latencies: Arc::new(Vec::new()),
            lat_scratch: Vec::new(),
            segment_latencies: Vec::new(),
            segment_arrived: 0,
            segment_completed: 0,
            kernel_stats: vec![KernelStats::default(); n_kernels],
            timeline: None,
            faults: Vec::new(),
            stranded: Vec::new(),
            fault_failures: 0,
            fault_retries: 0,
            seg_fault_events: 0,
            seg_retries: 0,
        };
        sim.preload_bitstreams();
        sim.recompute_wait_budgets();
        sim.apply_idle_floors();
        sim
    }

    /// Park platforms the current policy does not use: a GPU with no
    /// assigned kernel drops to its deep-idle (low-DVFS, memory parked)
    /// power — the paper's runtime "reduc[es] the GPU operating frequency"
    /// at low load (Section VI-C). [`GPU_PARKED_FRACTION`] of board idle.
    fn apply_idle_floors(&mut self) {
        let uses_gpu = self
            .policy
            .impls()
            .iter()
            .any(|i| i.kind == DeviceKind::Gpu);
        for d in &mut self.devices {
            if d.kind == DeviceKind::Gpu && d.healthy {
                d.idle_power_w = if uses_gpu {
                    self.config.gpu_idle_w
                } else {
                    self.config.gpu_idle_w * GPU_PARKED_FRACTION
                };
            }
        }
    }

    /// Slack-aware batch budgets: a kernel's batch may be held open until
    /// `request arrival + budget`, where the budget is what remains of the
    /// QoS bound after the downstream critical path at full-batch
    /// latencies. FPGAs and unbatched implementations never wait.
    fn recompute_wait_budgets(&mut self) {
        let order = self
            .graph
            .topological_order()
            .expect("validated graph is acyclic");
        let mut remaining = vec![0.0_f64; self.graph.len()];
        for &id in order.iter().rev() {
            let tail = self
                .graph
                .successors(id)
                .map(|e| {
                    let differs = self.policy.of(e.from).kind != self.policy.of(e.to).kind;
                    let t = if differs {
                        self.config.pcie.transfer_ms(e.bytes)
                    } else {
                        0.0
                    };
                    t + remaining[e.to.0]
                })
                .fold(0.0_f64, f64::max);
            remaining[id.0] = self.policy.of(id).latency_ms + tail;
        }
        self.wait_budget = (0..self.graph.len())
            .map(|i| {
                let imp = self.policy.of(KernelId(i));
                if imp.kind == DeviceKind::Gpu && imp.batch > 1 {
                    (self.config.latency_bound_ms * 0.6 - remaining[i]).max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
    }

    /// Configure FPGA devices with the policy's bitstreams at time zero,
    /// mirroring how a leaf node pre-provisions accelerators when it
    /// adopts a plan. Devices are split among the policy's FPGA kernels
    /// **proportionally to their service demand** (largest remainder, at
    /// least one each while devices last) — the same split the analytic
    /// capacity model assumes. Later policy changes pay reconfiguration.
    fn preload_bitstreams(&mut self) {
        let fpga_kernels: Vec<(poly_ir::KernelId, usize, f64, f64)> = self
            .policy
            .impls()
            .iter()
            .filter(|i| i.kind == DeviceKind::Fpga)
            .map(|i| (i.kernel, i.impl_index, i.idle_power_w, i.service_ms))
            .collect();
        if fpga_kernels.is_empty() {
            return;
        }
        let fpga_devs: Vec<usize> = self
            .devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == DeviceKind::Fpga)
            .map(|(i, _)| i)
            .collect();
        let n = fpga_devs.len() as f64;
        let total: f64 = fpga_kernels.iter().map(|k| k.3).sum();
        let mut shares: Vec<f64> = fpga_kernels
            .iter()
            .map(|k| {
                if total > 0.0 {
                    (k.3 / total * n).floor().max(1.0)
                } else {
                    1.0
                }
            })
            .collect();
        // Trim if minimums overshoot, then hand out spares to the most
        // loaded kernels.
        while shares.iter().sum::<f64>() > n && shares.iter().any(|&s| s > 1.0) {
            let (idx, _) = shares
                .iter()
                .enumerate()
                .filter(|(_, &s)| s > 1.0)
                .map(|(j, &s)| (j, fpga_kernels[j].3 / s))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("some share above one");
            shares[idx] -= 1.0;
        }
        let mut spare = n - shares.iter().sum::<f64>();
        while spare >= 1.0 {
            let (idx, _) = fpga_kernels
                .iter()
                .enumerate()
                .map(|(j, k)| (j, k.3 / shares[j]))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            shares[idx] += 1.0;
            spare -= 1.0;
        }
        let mut cursor = fpga_devs.into_iter();
        for ((kernel, idx, idle, _), share) in fpga_kernels.iter().zip(&shares) {
            for _ in 0..(*share as usize) {
                let Some(dev) = cursor.next() else { return };
                self.devices[dev].loaded = Some((*kernel, *idx));
                self.devices[dev].idle_power_w = *idle;
            }
        }
    }

    /// Current simulation time in milliseconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Enable (or disable) execution-timeline recording. Recording keeps
    /// one [`ExecutionRecord`] per started batch, capped at 100 000
    /// entries; intended for Gantt-style inspection of short runs.
    pub fn record_timeline(&mut self, enable: bool) {
        self.timeline = if enable { Some(Vec::new()) } else { None };
    }

    /// The recorded executions so far (empty when recording is off).
    #[must_use]
    pub fn timeline(&self) -> &[ExecutionRecord] {
        self.timeline.as_deref().unwrap_or(&[])
    }

    /// Replace the execution policy. Running executions finish under the
    /// old implementations; future dispatches use the new ones (FPGAs pay
    /// reconfiguration when the loaded bitstream no longer matches).
    pub fn set_policy(&mut self, policy: Policy) {
        assert_eq!(
            policy.len(),
            self.graph.len(),
            "policy must cover every kernel"
        );
        self.policy = policy;
        self.recompute_wait_budgets();
        self.apply_idle_floors();
        // A new plan may make stranded work dispatchable again (e.g. it
        // moves a kernel off a failed platform).
        self.redispatch_stranded();
    }

    /// Enqueue request arrivals at the given absolute times (ms). Times
    /// before the current simulation time are clamped to "now".
    pub fn enqueue_arrivals(&mut self, times: &[f64]) {
        for &t in times {
            let req = self.requests.len();
            self.requests.push(ReqState {
                arrival_ms: t.max(self.now),
                remaining_preds: (0..self.graph.len())
                    .map(|i| self.graph.predecessors(KernelId(i)).count())
                    .collect(),
                done: vec![false; self.graph.len()],
                kernels_left: self.graph.len(),
                attempt: vec![0; self.graph.len()],
            });
            self.push(t.max(self.now), EventKind::Arrival { req });
        }
    }

    fn push(&mut self, t: f64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse((TotalF64(t), self.seq, kind)));
    }

    /// Process all events up to (and including) time `t`.
    pub fn advance_to(&mut self, t: f64) {
        while let Some(Reverse((TotalF64(et), _, _))) = self.events.peek() {
            if *et > t {
                break;
            }
            let Reverse((TotalF64(et), _, kind)) = self.events.pop().expect("peeked");
            self.now = self.now.max(et);
            self.handle(kind);
        }
        self.now = self.now.max(t);
    }

    /// Run until the event queue drains (all enqueued requests complete),
    /// then return the absolute completion time.
    pub fn drain(&mut self) -> f64 {
        while let Some(Reverse((TotalF64(et), _, kind))) = self.events.pop() {
            self.now = self.now.max(et);
            self.handle(kind);
        }
        self.now
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::Arrival { req } => {
                self.arrived += 1;
                self.segment_arrived += 1;
                if self.last_arrival_ms >= 0.0 {
                    let interval = (self.now - self.last_arrival_ms).max(0.01);
                    self.arrival_rate = 0.9 * self.arrival_rate + 0.1 / interval;
                }
                self.last_arrival_ms = self.now;
                for source in self.graph.sources() {
                    self.push(
                        self.now,
                        EventKind::Dispatch {
                            req,
                            kernel: source,
                        },
                    );
                }
            }
            EventKind::Dispatch { req, kernel } => {
                let item = WorkItem {
                    req,
                    kernel,
                    ready_ms: self.now,
                };
                match self.choose_device(kernel) {
                    Some(dev) => {
                        self.devices[dev].queue.push_back(item);
                        self.try_start(dev);
                    }
                    // Every device of the required kind is down: park the
                    // work until a re-plan or a recovery.
                    None => self.stranded.push(item),
                }
            }
            EventKind::DeviceFree { dev } => {
                if self.devices[dev].healthy && self.devices[dev].busy_until <= self.now + 1e-12 {
                    self.devices[dev].executing = false;
                    self.try_start(dev);
                }
            }
            EventKind::Complete {
                req,
                kernel,
                attempt,
            } => self.complete(req, kernel, attempt),
            EventKind::Fault { idx } => self.apply_fault(idx),
        }
    }

    /// Device selection for `kernel`: affinity-with-spill. Each kernel has
    /// a *home* device among its platform (stable hash), which keeps GPU
    /// batches of the same kernel together and avoids convoy effects from
    /// interleaving kernel types; heavily loaded homes spill to the least
    /// loaded peer. FPGA devices loaded with a different bitstream are
    /// additionally charged the reconfiguration time. Returns `None` when
    /// every device of the required kind is currently failed (the caller
    /// strands the work); an outright-missing platform is still a panic —
    /// that is a planning bug, not a runtime fault.
    fn choose_device(&self, kernel: KernelId) -> Option<usize> {
        let imp = self.policy.of(kernel);
        let all: Vec<usize> = self
            .devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == imp.kind)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !all.is_empty(),
            "no device of kind {} in pool for kernel {kernel}",
            imp.kind
        );
        let mut peers: Vec<usize> = all
            .into_iter()
            .filter(|&i| self.devices[i].healthy)
            .collect();
        if peers.is_empty() {
            return None;
        }
        // FPGA dispatch is bitstream-sticky: transient queue pressure must
        // not trigger reconfiguration storms (each swap poisons another
        // kernel's home), so only devices already configured for this
        // kernel are eligible — unless none exists (fresh policy), in
        // which case any peer may be reconfigured once.
        if imp.kind == DeviceKind::Fpga {
            let matching: Vec<usize> = peers
                .iter()
                .copied()
                .filter(|&i| self.devices[i].loaded == Some((kernel, imp.impl_index)))
                .collect();
            if !matching.is_empty() {
                // Expansion hysteresis: only consider reconfiguring an
                // additional device when every configured device already
                // has a sustained backlog.
                let all_backlogged = matching.iter().all(|&i| self.devices[i].queue.len() >= 3);
                if !all_backlogged {
                    peers = matching;
                }
            }
        }
        let home = peers[kernel.0 % peers.len()];
        let mut best: Option<(f64, usize)> = None;
        for &i in &peers {
            let d = &self.devices[i];
            // A derated (throttled) device works through its backlog
            // `derate`× slower, so weight its queue accordingly.
            let mut score =
                d.busy_until.max(self.now) + d.queue.len() as f64 * imp.service_ms * d.derate;
            if i != home && d.kind == DeviceKind::Gpu {
                // GPU spill only pays off when the home is congested by
                // more than one average execution (batch locality); FPGA
                // spill cost is the reconfiguration term below.
                score += imp.latency_ms;
            }
            if d.kind == DeviceKind::Fpga
                && d.loaded.is_some()
                && d.loaded != Some((kernel, imp.impl_index))
            {
                score += d.reconfig_ms;
            }
            if best.is_none_or(|(bs, _)| score < bs) {
                best = Some((score, i));
            }
        }
        Some(best.map(|(_, i)| i).expect("non-empty peers"))
    }

    /// Start the next batch on device `dev` if it is healthy, idle, and
    /// has work.
    fn try_start(&mut self, dev: usize) {
        let now = self.now;
        if !self.devices[dev].healthy {
            return;
        }
        if self.devices[dev].executing && self.devices[dev].busy_until > now + 1e-12 {
            return;
        }
        // Drop completed entries from the in-flight book before committing
        // to more work (lazy pruning keeps completion O(1)).
        self.devices[dev]
            .inflight
            .retain(|e| e.completion_ms > now + 1e-12);
        let Some(front) = self.devices[dev].queue.front().copied() else {
            self.devices[dev].executing = false;
            return;
        };
        let imp: KernelImpl = *self.policy.of(front.kernel);

        // Deliberate batch formation (DjiNN-style): hold a partial GPU
        // batch open while (a) the oldest request's slack still allows it
        // and (b) the current arrival rate makes further same-kernel work
        // likely within that slack. At light load (b) fails and requests
        // start immediately, keeping the low-load tail flat.
        let budget = self.wait_budget.get(front.kernel.0).copied().unwrap_or(0.0);
        if budget > 0.0 {
            let same: u32 = self.devices[dev]
                .queue
                .iter()
                .filter(|i| i.kernel == front.kernel)
                .count()
                .try_into()
                .unwrap_or(u32::MAX);
            let deadline = self.requests[front.req].arrival_ms + budget;
            // Queue gate: only hold the batch open when a partial batch is
            // already forming (the device is trending throughput-bound);
            // a lone request at moderate load starts immediately.
            if same >= 2 && same < imp.batch && deadline > now + 1e-9 && self.arrival_rate > 0.0 {
                let kind = self.devices[dev].kind;
                let peers = self
                    .devices
                    .iter()
                    .filter(|x| x.kind == kind)
                    .count()
                    .max(1) as f64;
                // Wait only when the batch is expected to fill within the
                // remaining slack; otherwise launch the partial batch now.
                let fill_ms = f64::from(imp.batch - same) / (self.arrival_rate / peers);
                if now + fill_ms <= deadline {
                    let wake = (now + 1.2 * fill_ms).min(deadline);
                    self.devices[dev].executing = false;
                    self.push(wake, EventKind::DeviceFree { dev });
                    return;
                }
            }
        }
        let d = &mut self.devices[dev];

        // Gather up to `batch` queued items of the same kernel (GPU
        // batching); preserve the order of everything else.
        let mut batch = Vec::new();
        let mut rest = std::collections::VecDeque::new();
        while let Some(item) = d.queue.pop_front() {
            if item.kernel == front.kernel && batch.len() < imp.batch as usize {
                batch.push(item);
            } else {
                rest.push_back(item);
            }
        }
        d.queue = rest;

        let mut start = now;
        if d.kind == DeviceKind::Fpga && d.loaded != Some((front.kernel, imp.impl_index)) {
            if d.loaded.is_some() {
                d.reconfigs += 1;
            }
            start += d.reconfig_ms;
            d.loaded = Some((front.kernel, imp.impl_index));
        }

        let n = u32::try_from(batch.len()).unwrap_or(u32::MAX);
        {
            let ks = &mut self.kernel_stats[front.kernel.0];
            ks.executions += 1;
            ks.requests += batch.len();
            for item in &batch {
                ks.queue_wait_ms += (start - item.ready_ms).max(0.0);
            }
        }
        let exec = imp.exec_ms(n) * d.derate;
        let completion = start + exec;
        let busy_until = start + imp.occupancy_ms(n) * d.derate;
        if let Some(tl) = &mut self.timeline {
            if tl.len() < 100_000 {
                tl.push(ExecutionRecord {
                    device: dev,
                    kind: d.kind,
                    kernel: front.kernel,
                    impl_index: imp.impl_index,
                    start_ms: now,
                    reconfig_ms: start - now,
                    completion_ms: completion,
                    batch: batch.len(),
                });
            }
        }
        self.kernel_stats[front.kernel.0].busy_ms += busy_until - now;
        d.account_busy(now, busy_until, imp.active_power_w);
        d.idle_power_w = imp.idle_power_w;
        d.active_power_w = imp.active_power_w;
        d.executing = true;
        d.busy_until = busy_until;

        self.push(busy_until, EventKind::DeviceFree { dev });
        for item in batch {
            let attempt = self.requests[item.req].attempt[item.kernel.0];
            self.devices[dev].inflight.push(InflightItem {
                item,
                attempt,
                completion_ms: completion,
            });
            self.push(
                completion,
                EventKind::Complete {
                    req: item.req,
                    kernel: item.kernel,
                    attempt,
                },
            );
        }
    }

    fn complete(&mut self, req: usize, kernel: KernelId, attempt: u32) {
        let now = self.now;
        {
            let r = &mut self.requests[req];
            // A stale completion: the execution that scheduled this event
            // was killed by a fail-stop and the kernel was re-dispatched
            // under a higher attempt number.
            if r.done[kernel.0] || r.attempt[kernel.0] != attempt {
                return;
            }
            r.done[kernel.0] = true;
            r.kernels_left -= 1;
        }
        let my_kind = self.policy.of(kernel).kind;
        let succs: Vec<(KernelId, u64)> = self
            .graph
            .successors(kernel)
            .map(|e| (e.to, e.bytes))
            .collect();
        for (succ, bytes) in succs {
            let r = &mut self.requests[req];
            r.remaining_preds[succ.0] -= 1;
            if r.remaining_preds[succ.0] == 0 {
                let succ_kind = self.policy.of(succ).kind;
                let transfer = if succ_kind == my_kind {
                    0.0
                } else {
                    self.config.pcie.transfer_ms(bytes)
                };
                self.push(now + transfer, EventKind::Dispatch { req, kernel: succ });
            }
        }
        if self.requests[req].kernels_left == 0 {
            let latency = now - self.requests[req].arrival_ms;
            Arc::make_mut(&mut self.latencies).push(latency);
            self.segment_latencies.push(latency);
            self.completed += 1;
            self.segment_completed += 1;
        }
    }

    /// Discard all statistics gathered so far (latencies, counters, and
    /// energy books) and start a fresh measurement window at the current
    /// simulation time. Queue and device state is preserved — this is how
    /// warmup is excluded from steady-state measurements.
    pub fn reset_accounting(&mut self) {
        for d in &mut self.devices {
            d.account_idle_until(self.now);
            d.busy_energy_mj = 0.0;
            d.idle_energy_mj = 0.0;
            d.busy_ms = 0.0;
        }
        self.stats_since = self.now;
        self.arrived = 0;
        self.completed = 0;
        Arc::make_mut(&mut self.latencies).clear();
        self.segment_latencies.clear();
        self.segment_arrived = 0;
        self.segment_completed = 0;
        self.kernel_stats = vec![KernelStats::default(); self.graph.len()];
    }

    /// Statistics since the last call (the system monitor's view): arrived
    /// and completed counts and the latency distribution of the segment.
    pub fn drain_segment(&mut self) -> (usize, usize, LatencyStats) {
        let stats = LatencyStats::from_samples(std::mem::take(&mut self.segment_latencies));
        let arrived = std::mem::replace(&mut self.segment_arrived, 0);
        let completed = std::mem::replace(&mut self.segment_completed, 0);
        (arrived, completed, stats)
    }

    /// Total queued work items across devices, plus work stranded by
    /// failures (the monitor's queue-length signal).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.devices.iter().map(|d| d.queue.len()).sum::<usize>() + self.stranded.len()
    }

    /// Schedule the events of `plan` as discrete fault events. Events
    /// scripted before the current time fire immediately (at "now").
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        for &event in plan.events() {
            assert!(
                event.device < self.devices.len(),
                "fault targets device {} but the pool has {}",
                event.device,
                self.devices.len()
            );
            let idx = self.faults.len();
            self.faults.push(event);
            self.push(event.at_ms.max(self.now), EventKind::Fault { idx });
        }
    }

    /// The pool of currently healthy devices — what the runtime should
    /// re-plan against after a failure.
    #[must_use]
    pub fn available_pool(&self) -> Pool {
        let kinds: Vec<DeviceKind> = self
            .devices
            .iter()
            .filter(|d| d.healthy)
            .map(|d| d.kind)
            .collect();
        Pool::new(&kinds)
    }

    /// Number of currently healthy devices.
    #[must_use]
    pub fn healthy_devices(&self) -> usize {
        self.devices.iter().filter(|d| d.healthy).count()
    }

    /// Fault events applied and work items retried since the last call
    /// (the monitor's fault signal).
    pub fn take_fault_counts(&mut self) -> (usize, usize) {
        (
            std::mem::replace(&mut self.seg_fault_events, 0),
            std::mem::replace(&mut self.seg_retries, 0),
        )
    }

    /// Abandon every request that has not completed yet: clear device
    /// queues and in-flight books, drop stranded work, and mark the
    /// victims finished so their already-scheduled completion events
    /// become stale. Returns how many requests were abandoned — the
    /// traffic a front-end router must redistribute to other nodes when
    /// it drains this one (e.g. after a whole-node fail-stop).
    ///
    /// Scripted fault events stay queued, so a later recovery still
    /// returns the devices to service.
    pub fn cancel_pending(&mut self) -> usize {
        for d in &mut self.devices {
            d.queue.clear();
            d.inflight.clear();
        }
        self.stranded.clear();
        let mut cancelled = 0;
        for r in &mut self.requests {
            if r.kernels_left > 0 {
                cancelled += 1;
                r.kernels_left = 0;
                r.done.fill(true);
            }
        }
        cancelled
    }

    /// Re-dispatch work stranded by failures (called when a recovery or a
    /// policy change may have made it dispatchable again).
    fn redispatch_stranded(&mut self) {
        let stranded = std::mem::take(&mut self.stranded);
        let now = self.now;
        for item in stranded {
            self.push(
                now,
                EventKind::Dispatch {
                    req: item.req,
                    kernel: item.kernel,
                },
            );
        }
    }

    /// Apply scripted fault `idx` at the current time.
    fn apply_fault(&mut self, idx: usize) {
        let FaultEvent { device, kind, .. } = self.faults[idx];
        let now = self.now;
        match kind {
            FaultKind::FailStop => {
                if !self.devices[device].healthy {
                    return; // already down
                }
                self.fault_failures += 1;
                self.seg_fault_events += 1;
                let mut to_retry: Vec<WorkItem> = Vec::new();
                {
                    let d = &mut self.devices[device];
                    // The busy-energy account was pre-booked to the end of
                    // the running execution; refund the part the failure
                    // cuts off — a dead board draws nothing.
                    if d.executing && d.busy_until > now {
                        let cut = d.busy_until.min(d.accounted_to_ms) - now;
                        if cut > 0.0 {
                            d.busy_energy_mj -= d.active_power_w * cut;
                            d.busy_ms -= cut;
                            d.accounted_to_ms = now;
                        }
                    }
                    d.account_idle_until(now);
                    d.healthy = false;
                    d.executing = false;
                    d.busy_until = now;
                    d.loaded = None;
                    d.idle_power_w = 0.0;
                    to_retry.extend(d.queue.drain(..));
                }
                // Kill the in-flight batch: bump each victim's attempt so
                // its scheduled completion becomes stale, then retry it.
                let inflight = std::mem::take(&mut self.devices[device].inflight);
                for entry in inflight {
                    let r = &mut self.requests[entry.item.req];
                    let k = entry.item.kernel.0;
                    if entry.completion_ms > now + 1e-12
                        && !r.done[k]
                        && r.attempt[k] == entry.attempt
                    {
                        r.attempt[k] += 1;
                        to_retry.push(entry.item);
                    }
                }
                self.fault_retries += to_retry.len();
                self.seg_retries += to_retry.len();
                for item in to_retry {
                    self.push(
                        now,
                        EventKind::Dispatch {
                            req: item.req,
                            kernel: item.kernel,
                        },
                    );
                }
            }
            FaultKind::Slowdown { factor } => {
                let d = &mut self.devices[device];
                if d.healthy {
                    d.derate = factor.max(1.0);
                    self.seg_fault_events += 1;
                }
            }
            FaultKind::Recover => {
                let was_down = !self.devices[device].healthy;
                {
                    let d = &mut self.devices[device];
                    d.derate = 1.0;
                    if was_down {
                        d.healthy = true;
                        d.executing = false;
                        d.busy_until = now;
                        // The board rejoins cold at its configured idle
                        // power; energy accounting resumes from now.
                        d.accounted_to_ms = d.accounted_to_ms.max(now);
                        d.idle_power_w = match d.kind {
                            DeviceKind::Gpu => self.config.gpu_idle_w,
                            DeviceKind::Fpga => self.config.fpga_idle_w,
                        };
                    }
                }
                if was_down {
                    self.seg_fault_events += 1;
                    self.apply_idle_floors();
                }
                self.redispatch_stranded();
                self.push(now, EventKind::DeviceFree { dev: device });
            }
        }
    }

    /// Close the books at time `t` (≥ now) and produce the report.
    /// The simulator can continue afterwards, but energy accounting is
    /// simplest when `finish` is called once at the end.
    pub fn finish(&mut self, t: f64) -> SimReport {
        self.advance_to(t);
        let end = t.max(self.now);
        let duration_ms = (end - self.stats_since).max(1e-9);
        let mut energy_mj = 0.0;
        let mut devices = Vec::with_capacity(self.devices.len());
        for d in &mut self.devices {
            let e = d.finish(end);
            energy_mj += e;
            devices.push(DeviceStats {
                kind: d.kind,
                utilization: d.utilization(duration_ms),
                energy_j: e / 1000.0,
                reconfigs: d.reconfigs,
            });
        }
        let latency = LatencyStats::from_shared(&self.latencies, &mut self.lat_scratch);
        let qos_violation_ratio = latency.violation_ratio(self.config.latency_bound_ms);
        SimReport {
            duration_ms,
            arrived: self.arrived,
            completed: self.completed,
            qos_violation_ratio,
            avg_power_w: if duration_ms > 0.0 {
                energy_mj / duration_ms
            } else {
                0.0
            },
            energy_j: energy_mj / 1000.0,
            throughput_rps: if duration_ms > 0.0 {
                self.completed as f64 * 1000.0 / duration_ms
            } else {
                0.0
            },
            latency,
            devices,
            kernels: self.kernel_stats.clone(),
            device_failures: self.fault_failures,
            retried_requests: self.fault_retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_ir::{KernelBuilder, KernelGraphBuilder, OpFunc, PatternKind, Shape};

    fn graph2() -> KernelGraph {
        let k = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap();
        KernelGraphBuilder::new("app")
            .kernel(k.clone())
            .kernel(k.with_name("b"))
            .edge("a", "b", 1 << 20)
            .build()
            .unwrap()
    }

    fn gpu_impl(kernel: usize, latency: f64, batch: u32) -> KernelImpl {
        KernelImpl {
            kernel: KernelId(kernel),
            kind: DeviceKind::Gpu,
            impl_index: 0,
            latency_ms: latency,
            latency_single_ms: latency / f64::from(batch.max(1)) * 1.5,
            service_ms: latency / f64::from(batch.max(1)),
            batch,
            active_power_w: 200.0,
            idle_power_w: 40.0,
        }
    }

    fn fpga_impl(kernel: usize, latency: f64) -> KernelImpl {
        KernelImpl {
            kernel: KernelId(kernel),
            kind: DeviceKind::Fpga,
            impl_index: 0,
            latency_ms: latency,
            latency_single_ms: latency,
            service_ms: latency * 0.9,
            batch: 1,
            active_power_w: 25.0,
            idle_power_w: 5.0,
        }
    }

    fn sim(policy: Vec<KernelImpl>, pool: Pool) -> Simulator {
        Simulator::new(
            graph2(),
            &pool,
            Policy::from_impls(policy),
            SimConfig::default(),
        )
    }

    #[test]
    fn single_request_latency_is_sum_plus_transfer() {
        let mut s = sim(
            vec![gpu_impl(0, 10.0, 1), fpga_impl(1, 20.0)],
            Pool::heterogeneous(1, 1),
        );
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1);
        // 10 (a on GPU) + pcie(1 MiB) + 20 (b; bitstream preloaded).
        let expect = 10.0 + PcieLink::gen3_x16().transfer_ms(1 << 20) + 20.0;
        assert!(
            (r.latency.max() - expect).abs() < 1e-6,
            "{} vs {expect}",
            r.latency.max()
        );
    }

    #[test]
    fn same_platform_pays_no_transfer_and_no_second_reconfig() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 20.0)],
            Pool::heterogeneous(0, 2),
        );
        s.enqueue_arrivals(&[0.0, 1000.0]);
        s.drain();
        let r = s.finish(5000.0);
        assert_eq!(r.completed, 2);
        // Second request reuses the loaded bitstreams: latency = 10 + 20
        // with no reconfig (each device keeps its kernel).
        let second = r.latency.quantile(0.1).min(r.latency.max());
        assert!(second <= r.latency.max());
        assert!((r.latency.quantile(0.01) - 30.0).abs() < 1.0 || r.latency.max() > 30.0);
        let total_reconfigs: usize = r.devices.iter().map(|d| d.reconfigs).sum();
        assert_eq!(total_reconfigs, 0, "no bitstream swap needed");
    }

    #[test]
    fn gpu_batches_under_load() {
        // One GPU, batchable kernel: 8 simultaneous arrivals should finish
        // far faster than 8 sequential batch-1 executions.
        let one = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap();
        let g = KernelGraphBuilder::new("app").kernel(one).build().unwrap();
        let imp = KernelImpl {
            kernel: KernelId(0),
            kind: DeviceKind::Gpu,
            impl_index: 0,
            latency_ms: 80.0,
            latency_single_ms: 20.0,
            service_ms: 10.0,
            batch: 8,
            active_power_w: 200.0,
            idle_power_w: 40.0,
        };
        let mut s = Simulator::new(
            g,
            &Pool::heterogeneous(1, 0),
            Policy::from_impls(vec![imp]),
            SimConfig::default(),
        );
        s.enqueue_arrivals(&[0.0; 8]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 8);
        // First arrival starts a batch of 1 (20 ms); the other 7 form one
        // batch afterwards. Max latency ≈ 20 + exec(7) < 8 × 20.
        assert!(r.latency.max() < 8.0 * 20.0, "{}", r.latency.max());
    }

    #[test]
    fn queueing_grows_tail_latency() {
        // Single-kernel app on one FPGA (service 9 ms): arrivals every
        // 8 ms overload the device, arrivals every 25 ms do not.
        let one = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap();
        let g = KernelGraphBuilder::new("app").kernel(one).build().unwrap();
        let lat_at = |interval_ms: f64| {
            let mut s = Simulator::new(
                g.clone(),
                &Pool::heterogeneous(0, 1),
                Policy::from_impls(vec![fpga_impl(0, 10.0)]),
                SimConfig::default(),
            );
            let arrivals: Vec<f64> = (0..300).map(|i| i as f64 * interval_ms).collect();
            s.enqueue_arrivals(&arrivals);
            s.drain();
            s.finish(100_000.0).latency.p99()
        };
        assert!(lat_at(8.0) > lat_at(25.0) * 2.0);
    }

    #[test]
    fn reconfiguration_thrash_is_modelled() {
        // One FPGA alternating two kernels pays the bitstream swap each
        // time — a second FPGA eliminates the thrash entirely.
        let run = |fpgas: usize| {
            let mut s = sim(
                vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
                Pool::heterogeneous(0, fpgas),
            );
            s.enqueue_arrivals(&(0..20).map(|i| f64::from(i) * 1000.0).collect::<Vec<_>>());
            s.drain();
            s.finish(60_000.0)
        };
        let thrash = run(1);
        let clean = run(2);
        let thrash_reconfigs: usize = thrash.devices.iter().map(|d| d.reconfigs).sum();
        let clean_reconfigs: usize = clean.devices.iter().map(|d| d.reconfigs).sum();
        assert!(thrash_reconfigs >= 10, "{thrash_reconfigs}");
        assert_eq!(clean_reconfigs, 0);
        // Median: every thrashing request pays two swaps; the clean setup
        // only pays the initial bitstream loads on the first request.
        assert!(thrash.latency.p50() > clean.latency.p50() * 5.0);
    }

    #[test]
    fn power_integrates_idle_plus_active() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
            Pool::heterogeneous(0, 1),
        );
        // No arrivals at all: pure idle for 1 s at the preloaded
        // bitstream's idle power (5 W in the test implementation).
        let r = s.finish(1000.0);
        assert!((r.avg_power_w - 5.0).abs() < 1e-9);
        assert!((r.energy_j - 5.0).abs() < 1e-9);
    }

    #[test]
    fn violation_ratio_reflects_bound() {
        let mut s = sim(
            vec![fpga_impl(0, 150.0), fpga_impl(1, 150.0)],
            Pool::heterogeneous(0, 2),
        );
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(10_000.0);
        // 150 + reconfig 220 + transfer... way over the 200 ms bound.
        assert_eq!(r.qos_violation_ratio, 1.0);
    }

    #[test]
    fn segment_drain_resets_counters() {
        let mut s = sim(
            vec![fpga_impl(0, 5.0), fpga_impl(1, 5.0)],
            Pool::heterogeneous(0, 2),
        );
        s.enqueue_arrivals(&[0.0, 1.0]);
        s.advance_to(5_000.0);
        let (a1, c1, _) = s.drain_segment();
        assert_eq!(a1, 2);
        assert_eq!(c1, 2);
        let (a2, c2, l2) = s.drain_segment();
        assert_eq!((a2, c2), (0, 0));
        assert!(l2.is_empty());
    }

    #[test]
    fn policy_swap_changes_future_executions() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
            Pool::heterogeneous(1, 2),
        );
        s.enqueue_arrivals(&[0.0]);
        s.advance_to(2_000.0);
        // Swap kernel 0 to the GPU for future requests.
        s.set_policy(Policy::from_impls(vec![
            gpu_impl(0, 12.0, 2),
            fpga_impl(1, 10.0),
        ]));
        s.enqueue_arrivals(&[2_000.0]);
        s.drain();
        let r = s.finish(10_000.0);
        assert_eq!(r.completed, 2);
        let gpu = r
            .devices
            .iter()
            .find(|d| d.kind == DeviceKind::Gpu)
            .unwrap();
        assert!(gpu.utilization > 0.0, "GPU executed after the swap");
    }

    #[test]
    fn timeline_records_every_execution() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
            Pool::heterogeneous(0, 2),
        );
        s.record_timeline(true);
        s.enqueue_arrivals(&[0.0, 1.0]);
        s.drain();
        let tl = s.timeline().to_vec();
        // 2 requests × 2 kernels = 4 executions (batch = 1 each).
        assert_eq!(tl.len(), 4);
        for r in &tl {
            assert!(r.completion_ms > r.start_ms);
            assert_eq!(r.batch, 1);
            assert!(r.reconfig_ms >= 0.0);
        }
        // Recording can be turned off again.
        s.record_timeline(false);
        assert!(s.timeline().is_empty());
    }

    #[test]
    fn kernel_breakdown_accounts_every_request() {
        let mut s = sim(
            vec![fpga_impl(0, 10.0), fpga_impl(1, 10.0)],
            Pool::heterogeneous(0, 2),
        );
        s.enqueue_arrivals(&[0.0, 1.0, 2.0]);
        s.drain();
        let r = s.finish(10_000.0);
        assert_eq!(r.kernels.len(), 2);
        for ks in &r.kernels {
            assert_eq!(ks.requests, 3, "{ks:?}");
            assert!(ks.executions >= 1);
            assert!(ks.busy_ms > 0.0);
            assert!(ks.mean_batch() >= 1.0);
            assert!(ks.mean_wait_ms() >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "no device of kind")]
    fn missing_platform_panics() {
        let mut s = sim(
            vec![gpu_impl(0, 10.0, 1), fpga_impl(1, 10.0)],
            Pool::heterogeneous(0, 1), // no GPU!
        );
        s.enqueue_arrivals(&[0.0]);
        s.drain();
    }

    // --- fault injection ---------------------------------------------------

    fn graph1() -> KernelGraph {
        let k = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap();
        KernelGraphBuilder::new("app").kernel(k).build().unwrap()
    }

    #[test]
    fn fail_stop_retries_inflight_on_survivor() {
        // Two FPGAs, both preloaded with the kernel. The request starts on
        // its home device (0); device 0 dies mid-execution at t = 5 and the
        // work is retried on device 1, completing at 5 + 10 = 15.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0));
        s.enqueue_arrivals(&[0.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1);
        assert_eq!(r.device_failures, 1);
        assert_eq!(r.retried_requests, 1);
        assert!(
            (r.latency.max() - 15.0).abs() < 1e-6,
            "retried completion at 15, got {}",
            r.latency.max()
        );
    }

    #[test]
    fn fail_stop_strands_until_recovery() {
        // The only GPU dies before the request arrives: the work strands
        // (no healthy device of its kind) until the recovery at t = 100
        // re-dispatches it.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(1, 0),
            Policy::from_impls(vec![gpu_impl(0, 20.0, 1)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0).recover(100.0, 0));
        s.enqueue_arrivals(&[10.0]);
        s.advance_to(50.0);
        assert_eq!(s.healthy_devices(), 0);
        assert!(s.available_pool().is_empty());
        assert_eq!(s.queued(), 1, "request parked while the pool is empty");
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1);
        assert!(
            r.latency.max() >= 90.0,
            "latency includes the outage window: {}",
            r.latency.max()
        );
    }

    #[test]
    fn slowdown_derates_execution_until_recovery() {
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().slow_down(0.0, 0, 2.0).recover(100.0, 0));
        s.enqueue_arrivals(&[0.0, 200.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 2);
        // Throttled request takes 2 × 10 ms; post-recovery one is nominal.
        assert!((r.latency.max() - 20.0).abs() < 1e-6, "{}", r.latency.max());
        assert!(
            (r.latency.quantile(0.01) - 10.0).abs() < 1e-6,
            "{}",
            r.latency.quantile(0.01)
        );
        assert_eq!(r.device_failures, 0, "a slowdown is not a fail-stop");
    }

    #[test]
    fn failed_device_draws_no_power() {
        // Idle FPGA at 5 W dies at t = 400: only 400 ms of idle energy is
        // accounted over the 1 s window.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(400.0, 0));
        let r = s.finish(1000.0);
        assert!((r.energy_j - 2.0).abs() < 1e-9, "{}", r.energy_j);
        assert!((r.avg_power_w - 2.0).abs() < 1e-9, "{}", r.avg_power_w);
    }

    #[test]
    fn available_pool_reflects_health() {
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(1, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(10.0, 0).recover(30.0, 0));
        s.advance_to(20.0);
        assert_eq!(s.available_pool(), Pool::heterogeneous(0, 2));
        assert_eq!(s.healthy_devices(), 2);
        s.advance_to(40.0);
        assert_eq!(s.available_pool(), Pool::heterogeneous(1, 2));
        assert_eq!(s.healthy_devices(), 3);
    }

    #[test]
    fn fault_counts_drain_like_segments() {
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 2),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0).recover(50.0, 0));
        s.enqueue_arrivals(&[0.0]);
        s.advance_to(100.0);
        let (events, retried) = s.take_fault_counts();
        assert_eq!(events, 2, "fail-stop + recovery");
        assert_eq!(retried, 1);
        assert_eq!(s.take_fault_counts(), (0, 0), "counts drained");
    }

    #[test]
    fn cancel_pending_abandons_incomplete_requests() {
        // Single FPGA, 10 ms service: at t = 25 the first two requests are
        // done and three are queued or in flight. Draining the node
        // abandons exactly those three; they never complete.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.enqueue_arrivals(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        s.advance_to(25.0);
        let cancelled = s.cancel_pending();
        assert_eq!(cancelled, 3);
        assert_eq!(s.queued(), 0, "queues drained");
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 2, "abandoned requests never complete");
        // A second drain has nothing left to cancel.
        assert_eq!(s.cancel_pending(), 0);
    }

    #[test]
    fn cancel_pending_preserves_scripted_recovery() {
        // The only device fails at t = 5 stranding the request; the router
        // drains the node, but the scripted recovery at t = 100 still
        // fires and the node serves fresh traffic afterwards.
        let mut s = Simulator::new(
            graph1(),
            &Pool::heterogeneous(0, 1),
            Policy::from_impls(vec![fpga_impl(0, 10.0)]),
            SimConfig::default(),
        );
        s.inject_faults(&FaultPlan::new().fail_stop(5.0, 0).recover(100.0, 0));
        s.enqueue_arrivals(&[0.0]);
        s.advance_to(50.0);
        assert_eq!(s.healthy_devices(), 0);
        assert_eq!(s.cancel_pending(), 1);
        s.advance_to(150.0);
        assert_eq!(s.healthy_devices(), 1, "recovery survives the drain");
        s.enqueue_arrivals(&[150.0]);
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 1, "post-recovery traffic is served");
    }

    // --- batch-hold deferral gate ------------------------------------------

    /// One GPU, one batch-8 kernel with a 40 ms wait budget
    /// (0.6 × 200 ms bound − 80 ms full-batch latency).
    fn hold_sim() -> Simulator {
        let imp = KernelImpl {
            kernel: KernelId(0),
            kind: DeviceKind::Gpu,
            impl_index: 0,
            latency_ms: 80.0,
            latency_single_ms: 20.0,
            service_ms: 10.0,
            batch: 8,
            active_power_w: 200.0,
            idle_power_w: 40.0,
        };
        Simulator::new(
            graph1(),
            &Pool::heterogeneous(1, 0),
            Policy::from_impls(vec![imp]),
            SimConfig::default(),
        )
    }

    /// Queue two same-kernel requests directly (bypassing the arrival
    /// EWMA) so the `same >= 2` gate is reachable with a chosen
    /// `arrival_rate`.
    fn seed_two(s: &mut Simulator) {
        for i in 0..2 {
            s.requests.push(ReqState {
                arrival_ms: s.now,
                remaining_preds: vec![0],
                done: vec![false],
                kernels_left: 1,
                attempt: vec![0],
            });
            s.devices[0].queue.push_back(WorkItem {
                req: i,
                kernel: KernelId(0),
                ready_ms: s.now,
            });
        }
    }

    #[test]
    fn batch_hold_skipped_at_zero_arrival_rate() {
        let mut s = hold_sim();
        seed_two(&mut s);
        s.arrival_rate = 0.0;
        s.try_start(0);
        assert!(
            s.devices[0].executing,
            "zero arrival rate must launch immediately, not divide by zero"
        );
    }

    #[test]
    fn batch_hold_skipped_at_near_zero_arrival_rate() {
        // A vanishing rate passes the `> 0` gate but predicts an absurd
        // fill time, so the fill-within-slack check launches immediately.
        let mut s = hold_sim();
        seed_two(&mut s);
        s.arrival_rate = 1e-9;
        s.try_start(0);
        assert!(s.devices[0].executing);
    }

    #[test]
    fn batch_hold_skipped_when_deadline_passed() {
        // Requests arrived at t = 0 with a 40 ms budget; at t = 50 the
        // deadline is in the past and the partial batch must launch now.
        let mut s = hold_sim();
        seed_two(&mut s);
        s.now = 50.0;
        s.arrival_rate = 1.0;
        s.try_start(0);
        assert!(s.devices[0].executing);
    }

    #[test]
    fn batch_hold_defers_when_fill_lands_exactly_on_deadline() {
        // fill_ms = (8 − 2) / (0.25 / 1 peer) = 24; at t = 16 the batch
        // fills exactly at the 40 ms deadline (16 + 24 = 40), which the
        // `<=` comparison accepts: the device waits, capped at the
        // deadline, then launches.
        let mut s = hold_sim();
        seed_two(&mut s);
        s.now = 16.0;
        s.arrival_rate = 0.25;
        s.try_start(0);
        assert!(!s.devices[0].executing, "batch held open");
        let Reverse((TotalF64(wake), _, _)) = *s.events.peek().expect("wake event queued");
        assert_eq!(wake, 40.0, "wake capped at the deadline");
        s.advance_to(40.0);
        assert!(s.devices[0].executing, "partial batch launched at deadline");
        s.drain();
        let r = s.finish(1000.0);
        assert_eq!(r.completed, 2);
    }

    #[test]
    fn batch_hold_light_load_drains_without_deferral() {
        // Widely spaced arrivals never form a partial batch (`same >= 2`
        // fails), so every request starts immediately at single-request
        // latency.
        let mut s = hold_sim();
        let arrivals: Vec<f64> = (0..5).map(|i| f64::from(i) * 300.0).collect();
        s.enqueue_arrivals(&arrivals);
        s.drain();
        let r = s.finish(5000.0);
        assert_eq!(r.completed, 5);
        assert!(r.latency.max() < 30.0, "{}", r.latency.max());
    }
}
