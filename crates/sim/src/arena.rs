//! Struct-of-arrays request-state arena for the discrete-event engine.
//!
//! The engine previously kept one `ReqState` per request, each owning
//! four heap `Vec`s (`remaining_preds`, `done`, `attempt`, `hedged`) —
//! four allocations *per arrival* on the hot path, and unbounded growth
//! over a long replay because settled requests were never reclaimed.
//!
//! [`ReqArena`] flattens that state into parallel flat arrays indexed by
//! `request * n_kernels` (per-kernel state) or `request` (per-request
//! scalars). Admitting a request is a handful of slice extends from a
//! precomputed predecessor-count template — no per-request allocation in
//! steady state — and a prefix of *settled* requests can be compacted
//! away at measurement boundaries without renumbering: request indices
//! are global and monotone (a `base` offset maps them into the live
//! window), which matters because the backoff-jitter key and the audit
//! trail are derived from those indices.
//!
//! Compaction safety rests on one invariant, checked by every engine
//! access path: a compacted request is **settled** (its `outcome` left
//! `InFlight`), and every event handler consults
//! [`is_settled`](ReqArena::is_settled) — which answers `true` for the
//! compacted range without touching storage — before reading any
//! per-kernel state. Settled requests hold no queued or future-completion
//! work, so no live path ever indexes below `base`.

/// Where a request ended up. `InFlight` until exactly one terminal
/// transition; the audit counters assert that exactly-once property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    InFlight,
    Completed,
    TimedOut,
    Failed,
    Cancelled,
}

/// Struct-of-arrays request state with global (never reused) indices.
#[derive(Debug, Clone)]
pub(crate) struct ReqArena {
    /// Kernels per request (the DAG size).
    k: usize,
    /// Global index of the first request still held; everything below is
    /// compacted (and was settled).
    base: usize,
    /// Per-kernel predecessor counts of the DAG — the initial value of
    /// each new request's `remaining_preds` window.
    pred_template: Vec<u16>,
    // --- per-request scalars (index: req - base) --------------------------
    arrival_ms: Vec<f64>,
    deadline_ms: Vec<f64>,
    /// Relative input size (1.0 = the nominal profile the models were
    /// evaluated against).
    size: Vec<f64>,
    kernels_left: Vec<u32>,
    outcome: Vec<Outcome>,
    // --- per-kernel state (index: (req - base) * k + kernel) --------------
    remaining_preds: Vec<u16>,
    done: Vec<bool>,
    attempt: Vec<u32>,
    hedged: Vec<bool>,
    /// Pipelined streaming: the stage was dispatched early on its
    /// producer's first tile (its final predecessor count was consumed at
    /// stream time, so the producer's completion must not decrement it
    /// again). Never set under barrier semantics.
    streamed: Vec<bool>,
    /// Earliest time the streamed stage can see its producer's **last**
    /// tile; the consumer's completion is floored at this plus one of its
    /// own tile times. `NEG_INFINITY` = no streaming producer.
    stream_floor: Vec<f64>,
}

impl ReqArena {
    /// Arena for requests walking a `k`-kernel DAG whose per-kernel
    /// predecessor counts are `pred_template`.
    pub(crate) fn new(pred_template: Vec<u16>) -> Self {
        Self {
            k: pred_template.len(),
            base: 0,
            pred_template,
            arrival_ms: Vec::new(),
            deadline_ms: Vec::new(),
            size: Vec::new(),
            kernels_left: Vec::new(),
            outcome: Vec::new(),
            remaining_preds: Vec::new(),
            done: Vec::new(),
            attempt: Vec::new(),
            hedged: Vec::new(),
            streamed: Vec::new(),
            stream_floor: Vec::new(),
        }
    }

    /// Total requests ever admitted (compacted ones included): the next
    /// request's global index.
    pub(crate) fn len(&self) -> usize {
        self.base + self.arrival_ms.len()
    }

    /// Global indices of the retained (non-compacted) window.
    pub(crate) fn live_range(&self) -> std::ops::Range<usize> {
        self.base..self.len()
    }

    /// Admit a nominal-size request; returns its global index. (Test
    /// convenience — the engine always goes through
    /// [`push_sized`](Self::push_sized).)
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn push(&mut self, arrival_ms: f64, deadline_ms: f64) -> usize {
        self.push_sized(arrival_ms, deadline_ms, 1.0)
    }

    /// Admit a request with relative input size `size`; returns its
    /// global index.
    pub(crate) fn push_sized(&mut self, arrival_ms: f64, deadline_ms: f64, size: f64) -> usize {
        let req = self.len();
        self.arrival_ms.push(arrival_ms);
        self.deadline_ms.push(deadline_ms);
        self.size.push(size);
        self.kernels_left
            .push(u32::try_from(self.k).expect("kernel count fits u32"));
        self.outcome.push(Outcome::InFlight);
        self.remaining_preds.extend_from_slice(&self.pred_template);
        self.done.extend(std::iter::repeat_n(false, self.k));
        self.attempt.extend(std::iter::repeat_n(0u32, self.k));
        self.hedged.extend(std::iter::repeat_n(false, self.k));
        self.streamed.extend(std::iter::repeat_n(false, self.k));
        self.stream_floor
            .extend(std::iter::repeat_n(f64::NEG_INFINITY, self.k));
        req
    }

    /// Local window offset of global request `req`.
    ///
    /// # Panics
    /// Panics (in debug and release) if `req` was compacted — callers
    /// must consult [`is_settled`](Self::is_settled) first on any path a
    /// stale event can reach.
    fn at(&self, req: usize) -> usize {
        assert!(
            req >= self.base,
            "request {req} was compacted (base {})",
            self.base
        );
        req - self.base
    }

    fn kat(&self, req: usize, kernel: usize) -> usize {
        debug_assert!(kernel < self.k);
        self.at(req) * self.k + kernel
    }

    /// Whether `req` reached a terminal outcome (compacted requests are
    /// settled by construction).
    pub(crate) fn is_settled(&self, req: usize) -> bool {
        req < self.base || self.outcome[req - self.base] != Outcome::InFlight
    }

    /// Terminal (or in-flight) outcome of a *retained* request. The
    /// engine itself only ever needs the settled/in-flight distinction
    /// ([`is_settled`](Self::is_settled)); tests assert exact outcomes.
    #[cfg(test)]
    pub(crate) fn outcome(&self, req: usize) -> Outcome {
        self.outcome[self.at(req)]
    }

    pub(crate) fn set_outcome(&mut self, req: usize, outcome: Outcome) {
        let i = self.at(req);
        self.outcome[i] = outcome;
    }

    pub(crate) fn arrival_ms(&self, req: usize) -> f64 {
        self.arrival_ms[self.at(req)]
    }

    pub(crate) fn deadline_ms(&self, req: usize) -> f64 {
        self.deadline_ms[self.at(req)]
    }

    /// Relative input size of a retained request (1.0 = nominal).
    pub(crate) fn size(&self, req: usize) -> f64 {
        self.size[self.at(req)]
    }

    #[cfg(test)]
    pub(crate) fn kernels_left(&self, req: usize) -> u32 {
        self.kernels_left[self.at(req)]
    }

    /// Decrement `kernels_left`, returning the new value.
    pub(crate) fn dec_kernels_left(&mut self, req: usize) -> u32 {
        let i = self.at(req);
        self.kernels_left[i] -= 1;
        self.kernels_left[i]
    }

    pub(crate) fn done(&self, req: usize, kernel: usize) -> bool {
        self.done[self.kat(req, kernel)]
    }

    pub(crate) fn set_done(&mut self, req: usize, kernel: usize) {
        let i = self.kat(req, kernel);
        self.done[i] = true;
    }

    pub(crate) fn attempt(&self, req: usize, kernel: usize) -> u32 {
        self.attempt[self.kat(req, kernel)]
    }

    pub(crate) fn bump_attempt(&mut self, req: usize, kernel: usize) {
        let i = self.kat(req, kernel);
        self.attempt[i] += 1;
    }

    /// Bump every stage's attempt (stale-ifies all scheduled completions
    /// of the request).
    pub(crate) fn bump_all_attempts(&mut self, req: usize) {
        let i = self.at(req) * self.k;
        for a in &mut self.attempt[i..i + self.k] {
            *a += 1;
        }
    }

    pub(crate) fn hedged(&self, req: usize, kernel: usize) -> bool {
        self.hedged[self.kat(req, kernel)]
    }

    pub(crate) fn set_hedged(&mut self, req: usize, kernel: usize) {
        let i = self.kat(req, kernel);
        self.hedged[i] = true;
    }

    /// Decrement a successor's remaining-predecessor count, returning the
    /// new value.
    pub(crate) fn dec_remaining_preds(&mut self, req: usize, kernel: usize) -> u16 {
        let i = self.kat(req, kernel);
        self.remaining_preds[i] -= 1;
        self.remaining_preds[i]
    }

    /// Remaining undone predecessors of a stage (read-only — the streaming
    /// producer checks it is the *last* one before dispatching early).
    pub(crate) fn remaining_preds(&self, req: usize, kernel: usize) -> u16 {
        self.remaining_preds[self.kat(req, kernel)]
    }

    /// Whether the stage was already dispatched early by a streaming
    /// producer (its predecessor count was consumed at stream time).
    pub(crate) fn streamed(&self, req: usize, kernel: usize) -> bool {
        self.streamed[self.kat(req, kernel)]
    }

    /// Mark the stage as stream-dispatched. Never cleared: a killed or
    /// hedged producer must not re-dispatch (or re-decrement) the stage.
    pub(crate) fn set_streamed(&mut self, req: usize, kernel: usize) {
        let i = self.kat(req, kernel);
        self.streamed[i] = true;
    }

    /// Last-tile availability floor of a streamed stage (`NEG_INFINITY`
    /// when nothing streams into it).
    pub(crate) fn stream_floor(&self, req: usize, kernel: usize) -> f64 {
        self.stream_floor[self.kat(req, kernel)]
    }

    /// Record when the streaming producer's last tile reaches the stage.
    pub(crate) fn set_stream_floor(&mut self, req: usize, kernel: usize, floor_ms: f64) {
        let i = self.kat(req, kernel);
        self.stream_floor[i] = floor_ms;
    }

    /// Retained requests still in flight (the audit's `pending` count;
    /// compacted requests are settled and contribute zero).
    pub(crate) fn pending(&self) -> usize {
        self.outcome
            .iter()
            .filter(|&&o| o == Outcome::InFlight)
            .count()
    }

    /// Drop the settled prefix of the window, keeping global indices
    /// stable via `base`. Called at measurement boundaries; the live
    /// suffix is tiny compared to a long replay's total admissions, so
    /// the memmove is cheap and memory stays bounded by the in-flight
    /// population, not the trace length.
    pub(crate) fn compact(&mut self) {
        let settled = self
            .outcome
            .iter()
            .take_while(|&&o| o != Outcome::InFlight)
            .count();
        if settled == 0 {
            return;
        }
        self.base += settled;
        self.arrival_ms.drain(..settled);
        self.deadline_ms.drain(..settled);
        self.size.drain(..settled);
        self.kernels_left.drain(..settled);
        self.outcome.drain(..settled);
        self.remaining_preds.drain(..settled * self.k);
        self.done.drain(..settled * self.k);
        self.attempt.drain(..settled * self.k);
        self.hedged.drain(..settled * self.k);
        self.streamed.drain(..settled * self.k);
        self.stream_floor.drain(..settled * self.k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena2() -> ReqArena {
        // Two-kernel chain: kernel 0 has no predecessors, kernel 1 has 1.
        ReqArena::new(vec![0, 1])
    }

    #[test]
    fn push_initializes_from_template() {
        let mut a = arena2();
        let r = a.push(5.0, 100.0);
        assert_eq!(r, 0);
        assert_eq!(a.arrival_ms(r), 5.0);
        assert_eq!(a.deadline_ms(r), 100.0);
        assert_eq!(a.size(r).to_bits(), 1.0f64.to_bits());
        let r2 = a.push_sized(6.0, 100.0, 2.5);
        assert_eq!(a.size(r2), 2.5);
        assert_eq!(a.kernels_left(r), 2);
        assert_eq!(a.outcome(r), Outcome::InFlight);
        assert!(!a.done(r, 0) && !a.done(r, 1));
        assert_eq!(a.attempt(r, 0), 0);
        assert!(!a.hedged(r, 1));
        assert_eq!(a.dec_remaining_preds(r, 1), 0);
    }

    #[test]
    fn compaction_keeps_global_indices() {
        let mut a = arena2();
        for i in 0..10 {
            let r = a.push(i as f64, f64::INFINITY);
            assert_eq!(r, i);
        }
        // Settle the first seven, leave 7..10 in flight.
        for r in 0..7 {
            a.set_outcome(r, Outcome::Completed);
        }
        a.compact();
        assert_eq!(a.len(), 10, "global count unchanged");
        assert_eq!(a.live_range(), 7..10);
        assert_eq!(a.pending(), 3);
        for r in 0..7 {
            assert!(a.is_settled(r), "compacted request {r} reads settled");
        }
        assert!(!a.is_settled(7));
        assert_eq!(a.arrival_ms(8), 8.0, "retained state intact");
        // New admissions continue the global numbering.
        assert_eq!(a.push(99.0, f64::INFINITY), 10);
        // A settled-but-unsorted suffix does not compact past the first
        // in-flight request.
        a.set_outcome(9, Outcome::Cancelled);
        a.compact();
        assert_eq!(a.live_range(), 7..11, "request 7 still pins the window");
    }

    #[test]
    #[should_panic(expected = "compacted")]
    fn direct_access_to_compacted_request_panics() {
        let mut a = arena2();
        a.push(0.0, f64::INFINITY);
        a.set_outcome(0, Outcome::Completed);
        a.compact();
        let _ = a.arrival_ms(0);
    }

    #[test]
    fn streaming_state_defaults_and_survives_compaction() {
        let mut a = arena2();
        let r0 = a.push(0.0, f64::INFINITY);
        let r1 = a.push(1.0, f64::INFINITY);
        assert!(!a.streamed(r0, 1));
        assert_eq!(a.stream_floor(r0, 1), f64::NEG_INFINITY);
        assert_eq!(a.remaining_preds(r1, 1), 1);
        a.set_streamed(r1, 1);
        a.set_stream_floor(r1, 1, 42.5);
        a.set_outcome(r0, Outcome::Completed);
        a.compact();
        assert!(a.streamed(r1, 1), "stream flag intact across compaction");
        assert_eq!(a.stream_floor(r1, 1), 42.5);
        assert!(!a.streamed(r1, 0));
    }

    #[test]
    fn per_kernel_state_is_independent_across_requests() {
        let mut a = arena2();
        let r0 = a.push(0.0, f64::INFINITY);
        let r1 = a.push(1.0, f64::INFINITY);
        a.set_done(r0, 1);
        a.bump_attempt(r1, 0);
        a.set_hedged(r1, 1);
        assert!(a.done(r0, 1) && !a.done(r1, 1));
        assert_eq!(a.attempt(r0, 0), 0);
        assert_eq!(a.attempt(r1, 0), 1);
        assert!(a.hedged(r1, 1) && !a.hedged(r0, 1));
        a.bump_all_attempts(r0);
        assert_eq!((a.attempt(r0, 0), a.attempt(r0, 1)), (1, 1));
        assert_eq!((a.attempt(r1, 0), a.attempt(r1, 1)), (1, 0));
    }
}
