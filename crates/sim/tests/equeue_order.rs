//! Property test: the timer-wheel [`EventQueue`] pops in exactly the
//! order of the `BinaryHeap<Reverse<(TotalF64, seq, payload)>>` it
//! replaced — `(time, insertion seq)` lexicographic, ties broken by
//! arrival order — over random interleaved push/pop streams whose times
//! span ties, the wheel's in-ring horizon, and the far-future overflow
//! path.

use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use poly_sim::{EventQueue, TotalF64};

type RefHeap = BinaryHeap<Reverse<(TotalF64, u64, u32)>>;

/// Reference push with the engine's pre-incremented sequence numbering
/// (first event gets seq 1), matching `EventQueue::push`.
fn ref_push(h: &mut RefHeap, seq: &mut u64, t: f64, v: u32) {
    *seq += 1;
    h.push(Reverse((TotalF64(t), *seq, v)));
}

fn ref_pop(h: &mut RefHeap) -> Option<(f64, u64, u32)> {
    h.pop().map(|Reverse((t, s, v))| (t.0, s, v))
}

proptest! {
    #[test]
    fn wheel_pop_order_matches_binary_heap(
        // (is_pop, time delta in tenths of ms, re-push previous time).
        // Deltas reach 6000 ms — past the wheel's ~4 s in-ring horizon,
        // so streams exercise ring placement, the overflow heap, and its
        // migration back into the ring. `tie` re-pushes the exact
        // previous timestamp to pin the same-time seq tie-break.
        ops in proptest::collection::vec(
            (any::<bool>(), 0u32..60_000, any::<bool>()),
            1..400,
        )
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut h: RefHeap = BinaryHeap::new();
        let mut seq = 0u64;
        // Advances to the last popped time, like the simulator clock.
        let mut now = 0.0f64;
        let mut last_t = 0.0f64;
        let mut n = 0u32;
        for (is_pop, delta_tenths, tie) in ops {
            if is_pop {
                let got = q.pop();
                let want = ref_pop(&mut h);
                prop_assert_eq!(got, want);
                if let Some((t, _, _)) = got {
                    now = t;
                }
            } else {
                let t = if tie {
                    // May even lie before the wheel's cursor once pops
                    // advanced past it; order must still hold.
                    last_t
                } else {
                    now + f64::from(delta_tenths) / 10.0
                };
                last_t = t;
                n += 1;
                q.push(t, n);
                ref_push(&mut h, &mut seq, t, n);
            }
        }
        // Drain both completely: every remaining event, ties included,
        // must come out in identical (time, seq) order.
        loop {
            let got = q.pop();
            let want = ref_pop(&mut h);
            prop_assert_eq!(got, want);
            if got.is_none() {
                prop_assert!(q.is_empty());
                break;
            }
        }
    }

    #[test]
    fn wheel_drains_same_timestamp_bursts_in_push_order(
        times in proptest::collection::vec(0u32..50, 1..200)
    ) {
        // Heavily duplicated timestamps (50 distinct values, up to 200
        // events): pure seq tie-breaking under burst load.
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut h: RefHeap = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, &t) in times.iter().enumerate() {
            let t = f64::from(t) * 2.0;
            q.push(t, i as u32);
            ref_push(&mut h, &mut seq, t, i as u32);
        }
        while let Some(want) = ref_pop(&mut h) {
            prop_assert_eq!(q.pop(), Some(want));
        }
        prop_assert_eq!(q.pop(), None);
    }
}
