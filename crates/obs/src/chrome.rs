//! Chrome `trace_event` exporter: renders the control/device view of a
//! sample buffer as JSON loadable in `chrome://tracing` or Perfetto.
//!
//! The flamechart carries device-occupancy spans (`ExecStart`), control
//! intervals (`Interval`), and instant markers (faults, hedges, routing,
//! breaker transitions, governor re-splits). Per-request stage events
//! stay out of the JSON — they are queried through the histogram API and
//! CSV summaries instead — which keeps trace files bounded.
//!
//! Output is deterministic: samples render in buffer order, metadata
//! rows sort by `(pid, tid)`, and every float prints with fixed
//! precision (non-finite values map to `-1`).

use std::collections::BTreeMap;

use crate::event::{Event, Sample};

/// Track row reserved for a node's control-loop intervals.
const TID_CONTROL: usize = 900;
/// Track row reserved for cluster actions targeting a node.
const TID_CLUSTER: usize = 901;
/// Track row for cluster-wide load shedding.
const TID_SHED: usize = 902;

/// Fixed-precision float for JSON args; non-finite values become `-1`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "-1".to_string()
    }
}

/// Milliseconds → trace_event microseconds, fixed precision.
fn us(ms: f64) -> String {
    if ms.is_finite() {
        format!("{:.3}", ms * 1000.0)
    } else {
        "-1".to_string()
    }
}

#[derive(Default)]
struct Writer {
    entries: Vec<String>,
    names: BTreeMap<(usize, usize), String>,
}

impl Writer {
    fn name_row(&mut self, pid: usize, tid: usize, name: impl Into<String>) {
        self.names.entry((pid, tid)).or_insert_with(|| name.into());
    }

    fn span(&mut self, pid: usize, tid: usize, t_ms: f64, dur_ms: f64, name: &str, args: &str) {
        self.entries.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{name}\",\"args\":{{{args}}}}}",
            us(t_ms),
            us(dur_ms.max(0.0)),
        ));
    }

    fn instant(&mut self, pid: usize, tid: usize, t_ms: f64, name: &str, args: &str) {
        self.entries.push(format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"name\":\"{name}\",\"args\":{{{args}}}}}",
            us(t_ms),
        ));
    }
}

/// Render `samples` as a Chrome `trace_event` JSON document.
///
/// Processes (`pid`) are tracks: with any multi-track sample present,
/// pid 0 is the cluster driver and pid `n` is node `n-1`; a single-track
/// buffer is just "node". Threads (`tid`) are device rows plus reserved
/// control/cluster rows.
#[must_use]
pub fn chrome_trace_json(samples: &[Sample]) -> String {
    let multi = samples.iter().any(|s| s.track > 0);
    let mut w = Writer::default();

    for s in samples {
        let pid = s.track as usize;
        match &s.event {
            Event::ExecStart {
                device,
                device_kind,
                backend,
                kernel,
                impl_index,
                batch,
                reconfig_ms,
                busy_ms,
                exec_ms,
            } => {
                w.name_row(pid, *device, format!("dev{device} {device_kind}"));
                let name = format!("k{kernel} x{batch}");
                let args = format!(
                    "\"impl\":{impl_index},\"batch\":{batch},\"backend\":\"{backend}\",\"reconfig_ms\":{},\"exec_ms\":{}",
                    num(*reconfig_ms),
                    num(*exec_ms)
                );
                w.span(pid, *device, s.t_ms, *busy_ms, &name, &args);
            }
            Event::Interval {
                start_ms,
                dur_ms,
                offered_rps,
                load_est_rps,
                policy_changed,
                reason,
                predicted_p99_ms,
                observed_p99_ms,
                power_w,
                completed,
                violations,
                ..
            } => {
                w.name_row(pid, TID_CONTROL, "control");
                let name = if *policy_changed {
                    format!("replan:{reason}")
                } else {
                    (*reason).to_string()
                };
                let args = format!(
                    "\"offered_rps\":{},\"load_est_rps\":{},\"predicted_p99_ms\":{},\"observed_p99_ms\":{},\"power_w\":{},\"completed\":{completed},\"violations\":{violations}",
                    num(*offered_rps),
                    num(*load_est_rps),
                    num(*predicted_p99_ms),
                    num(*observed_p99_ms),
                    num(*power_w)
                );
                w.span(pid, TID_CONTROL, *start_ms, *dur_ms, &name, &args);
            }
            Event::Fault { device, kind } => {
                w.name_row(pid, *device, format!("dev{device}"));
                w.instant(pid, *device, s.t_ms, &format!("fault:{kind}"), "");
            }
            Event::HedgeFired { device, kernel, .. } => {
                w.name_row(pid, *device, format!("dev{device}"));
                w.instant(
                    pid,
                    *device,
                    s.t_ms,
                    "hedge",
                    &format!("\"kernel\":{kernel}"),
                );
            }
            Event::Route { node, assigned } => {
                let pid = node + 1;
                w.name_row(pid, TID_CLUSTER, "cluster");
                w.instant(
                    pid,
                    TID_CLUSTER,
                    s.t_ms,
                    "route",
                    &format!("\"assigned\":{assigned}"),
                );
            }
            Event::BreakerTransition { node, from, to } => {
                let pid = node + 1;
                w.name_row(pid, TID_CLUSTER, "cluster");
                w.instant(
                    pid,
                    TID_CLUSTER,
                    s.t_ms,
                    &format!("breaker:{from}->{to}"),
                    "",
                );
            }
            Event::GovernorSplit { node, cap_w } => {
                let pid = node + 1;
                w.name_row(pid, TID_CLUSTER, "cluster");
                w.instant(
                    pid,
                    TID_CLUSTER,
                    s.t_ms,
                    "cap",
                    &format!("\"cap_w\":{}", num(*cap_w)),
                );
            }
            Event::Shed { count } => {
                w.name_row(0, TID_SHED, "shed");
                w.instant(0, TID_SHED, s.t_ms, "shed", &format!("\"count\":{count}"));
            }
            // Per-request stage events are served by the histogram/CSV
            // exporters; keeping them out of the JSON bounds its size.
            _ => {}
        }
    }

    let mut rows: Vec<String> = Vec::with_capacity(w.entries.len() + 2 * w.names.len());
    let mut seen_pids: Vec<usize> = w.names.keys().map(|&(pid, _)| pid).collect();
    seen_pids.dedup();
    for pid in seen_pids {
        let pname = if multi {
            if pid == 0 {
                "cluster-driver".to_string()
            } else {
                format!("node{}", pid - 1)
            }
        } else {
            "node".to_string()
        };
        rows.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{pname}\"}}}}"
        ));
    }
    for ((pid, tid), tname) in &w.names {
        rows.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{tname}\"}}}}"
        ));
    }
    rows.extend(w.entries);

    let mut doc = String::from("{\"traceEvents\":[\n");
    doc.push_str(&rows.join(",\n"));
    doc.push_str("\n]}\n");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Sample;

    fn sample(t_ms: f64, seq: u64, track: u32, event: Event) -> Sample {
        Sample {
            t_ms,
            seq,
            track,
            event,
        }
    }

    #[test]
    fn exports_spans_instants_and_metadata() {
        let samples = vec![
            sample(
                1.0,
                0,
                0,
                Event::ExecStart {
                    device: 2,
                    device_kind: "fpga",
                    backend: "analytical",
                    kernel: 1,
                    impl_index: 3,
                    batch: 4,
                    reconfig_ms: 0.5,
                    busy_ms: 2.5,
                    exec_ms: 2.0,
                },
            ),
            sample(
                3.0,
                1,
                0,
                Event::Fault {
                    device: 2,
                    kind: "fail-stop",
                },
            ),
            sample(
                0.0,
                2,
                0,
                Event::Interval {
                    index: 0,
                    start_ms: 0.0,
                    dur_ms: 10.0,
                    offered_rps: 30.0,
                    load_est_rps: 28.0,
                    policy_changed: true,
                    reason: "initial",
                    predicted_p99_ms: f64::INFINITY,
                    observed_p99_ms: 5.0,
                    power_w: 100.0,
                    completed: 9,
                    violations: 0,
                },
            ),
        ];
        let json = chrome_trace_json(&samples);
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.ends_with("\n]}\n"));
        assert!(json.contains("\"name\":\"k1 x4\""));
        assert!(json.contains("\"dur\":2500.000"));
        assert!(json.contains("\"name\":\"fault:fail-stop\""));
        assert!(json.contains("\"name\":\"replan:initial\""));
        // Non-finite predicted p99 maps to -1, never to "inf".
        assert!(json.contains("\"predicted_p99_ms\":-1"));
        assert!(!json.contains("inf\""));
        // Metadata precedes events.
        let meta = json.find("thread_name").unwrap();
        let span = json.find("\"ph\":\"X\"").unwrap();
        assert!(meta < span);
        assert!(json.contains("\"name\":\"dev2 fpga\""));
    }

    #[test]
    fn cluster_events_land_on_node_tracks() {
        let samples = vec![
            sample(
                10.0,
                0,
                0,
                Event::Route {
                    node: 1,
                    assigned: 7,
                },
            ),
            sample(
                10.0,
                1,
                0,
                Event::BreakerTransition {
                    node: 0,
                    from: "closed",
                    to: "open",
                },
            ),
            sample(10.0, 2, 0, Event::Shed { count: 3 }),
            sample(
                10.0,
                3,
                2,
                Event::ExecStart {
                    device: 0,
                    device_kind: "gpu",
                    backend: "cpu",
                    kernel: 0,
                    impl_index: 0,
                    batch: 1,
                    reconfig_ms: 0.0,
                    busy_ms: 1.0,
                    exec_ms: 1.0,
                },
            ),
        ];
        let json = chrome_trace_json(&samples);
        assert!(json.contains("\"name\":\"breaker:closed->open\""));
        assert!(json.contains("\"name\":\"cluster-driver\""));
        assert!(json.contains("\"name\":\"node1\""));
        assert!(json.contains("\"count\":3"));
    }

    #[test]
    fn empty_buffer_is_still_valid_json_shell() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[\n\n]}\n");
    }
}
