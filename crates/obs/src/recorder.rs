//! The [`Recorder`] sink trait and its two implementations: the no-op
//! [`NullRecorder`] (zero cost beyond one branch at each emission site)
//! and the shared in-memory [`MemRecorder`].

use std::sync::{Arc, Mutex, PoisonError};

use crate::event::{Event, Sample};

/// Sink for telemetry events. Emission sites in the simulator, runtime,
/// and cluster guard event construction behind [`Recorder::enabled`],
/// so a disabled recorder costs one branch and builds nothing.
///
/// Implementations must be deterministic: given the same sequence of
/// `record` calls they must produce the same observable state. They must
/// not read clocks or randomness.
pub trait Recorder: std::fmt::Debug + Send {
    /// Record `event` at sim time `t_ms`.
    fn record(&mut self, t_ms: f64, event: Event);

    /// Whether emission sites should bother constructing events.
    fn enabled(&self) -> bool {
        true
    }

    /// Tag this handle with a track id (cluster node index + 1; 0 is the
    /// single-node / cluster-driver track). Default: ignored.
    fn set_track(&mut self, track: u32) {
        let _ = track;
    }

    /// Clone into a boxed trait object (clone-box pattern, so structs
    /// holding `Box<dyn Recorder>` can stay `#[derive(Clone)]`).
    fn box_clone(&self) -> Box<dyn Recorder>;
}

impl Clone for Box<dyn Recorder> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Recorder that drops every event. [`Recorder::enabled`] returns
/// `false`, so emission sites skip event construction entirely — a run
/// with a `NullRecorder` is bit-identical to a run with no recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _t_ms: f64, _event: Event) {}

    fn enabled(&self) -> bool {
        false
    }

    fn box_clone(&self) -> Box<dyn Recorder> {
        Box::new(*self)
    }
}

#[derive(Debug)]
struct MemState {
    seq: u64,
    samples: Vec<Sample>,
    cap: usize,
    dropped: u64,
}

/// In-memory recorder. Clones share one buffer: the caller keeps a
/// handle to read samples back while passing clones (with distinct
/// tracks) into the simulator, runtime, or cluster nodes. A single
/// buffer-global sequence number orders events across tracks — nodes run
/// sequentially inside an interval, so that order is deterministic.
///
/// The buffer is capped ([`MemRecorder::with_limit`]; the default cap is
/// 1 << 22 samples ≈ enough for the experiment figures) and counts
/// overflow in [`MemRecorder::dropped`] rather than reallocating without
/// bound — the cap cut is deterministic because the sequence is.
#[derive(Debug, Clone)]
pub struct MemRecorder {
    state: Arc<Mutex<MemState>>,
    track: u32,
}

impl Default for MemRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MemRecorder {
    /// Default buffer cap, in samples.
    pub const DEFAULT_LIMIT: usize = 1 << 22;

    /// New empty recorder with the default cap.
    #[must_use]
    pub fn new() -> Self {
        Self::with_limit(Self::DEFAULT_LIMIT)
    }

    /// New empty recorder holding at most `cap` samples.
    #[must_use]
    pub fn with_limit(cap: usize) -> Self {
        Self {
            state: Arc::new(Mutex::new(MemState {
                seq: 0,
                samples: Vec::new(),
                cap,
                dropped: 0,
            })),
            track: 0,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot of the recorded samples, in `(t_ms, seq)` order.
    #[must_use]
    pub fn samples(&self) -> Vec<Sample> {
        self.lock().samples.clone()
    }

    /// Number of samples held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().samples.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().samples.is_empty()
    }

    /// Events dropped because the buffer cap was reached.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// This handle's track id.
    #[must_use]
    pub fn track(&self) -> u32 {
        self.track
    }

    /// A clone of this handle tagged with `track` (shares the buffer).
    #[must_use]
    pub fn on_track(&self, track: u32) -> Self {
        Self {
            state: Arc::clone(&self.state),
            track,
        }
    }
}

impl Recorder for MemRecorder {
    fn record(&mut self, t_ms: f64, event: Event) {
        let mut st = self.lock();
        let seq = st.seq;
        st.seq += 1;
        if st.samples.len() < st.cap {
            st.samples.push(Sample {
                t_ms,
                seq,
                track: self.track,
                event,
            });
        } else {
            st.dropped += 1;
        }
    }

    fn set_track(&mut self, track: u32) {
        self.track = track;
    }

    fn box_clone(&self) -> Box<dyn Recorder> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(1.0, Event::Shed { count: 1 });
        let b: Box<dyn Recorder> = r.box_clone();
        assert!(!b.enabled());
    }

    #[test]
    fn mem_recorder_clones_share_buffer_and_sequence() {
        let root = MemRecorder::new();
        let mut a = root.on_track(1);
        let mut b = root.on_track(2);
        a.record(5.0, Event::Shed { count: 1 });
        b.record(5.0, Event::Shed { count: 2 });
        a.record(6.0, Event::Shed { count: 3 });
        let s = root.samples();
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.iter().map(|x| x.seq).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "buffer-global sequence"
        );
        assert_eq!(s.iter().map(|x| x.track).collect::<Vec<_>>(), vec![1, 2, 1]);
    }

    #[test]
    fn mem_recorder_cap_counts_drops() {
        let root = MemRecorder::with_limit(2);
        let mut h = root.on_track(0);
        for i in 0..5 {
            h.record(f64::from(i), Event::Shed { count: 1 });
        }
        assert_eq!(root.len(), 2);
        assert_eq!(root.dropped(), 3);
    }
}
