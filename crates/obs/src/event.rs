//! Telemetry event schema: primitives only (indices, floats, `&'static
//! str` labels), so recording allocates nothing beyond the sample buffer
//! and exporters never need string escaping.

/// One telemetry event. Variants are grouped by the layer that emits
/// them: request lifecycle and device execution come from the DES,
/// `Interval` from the runtime's control loop, and the rest from the
/// cluster driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A request entered the system (all of its kernel stages enqueued).
    ReqEnqueue {
        /// Request index within the current segment.
        req: usize,
        /// Absolute deadline in sim-ms (`f64::INFINITY` when deadlines
        /// are disabled).
        deadline_ms: f64,
    },
    /// A kernel stage was placed on a device queue.
    StageDispatch {
        /// Request index.
        req: usize,
        /// Kernel index within the application graph.
        kernel: usize,
        /// Device index within the pool.
        device: usize,
        /// Attempt number (0 = first try, >0 = retry).
        attempt: u32,
        /// Whether this is a hedge duplicate.
        hedge: bool,
    },
    /// A kernel stage had no live device to run on and was stranded.
    StageStranded {
        /// Request index.
        req: usize,
        /// Kernel index.
        kernel: usize,
    },
    /// A device started executing a batch (one span on the device's
    /// timeline row; per-request detail rides on `StageStart`).
    ExecStart {
        /// Device index within the pool.
        device: usize,
        /// Device kind label ("gpu" / "fpga").
        device_kind: &'static str,
        /// Execution backend the span's timing came from ("analytical"
        /// = modeled, "cpu" = measured host execution).
        backend: &'static str,
        /// Kernel index the batch belongs to.
        kernel: usize,
        /// Implementation index chosen by the active policy.
        impl_index: usize,
        /// Number of requests in the batch.
        batch: usize,
        /// Reconfiguration stall charged before execution, ms.
        reconfig_ms: f64,
        /// Device occupancy for this batch (reconfig + occupancy), ms.
        busy_ms: f64,
        /// Latency-visible execution time for the batch, ms.
        exec_ms: f64,
    },
    /// One request's stage started executing within a batch.
    StageStart {
        /// Request index.
        req: usize,
        /// Kernel index.
        kernel: usize,
        /// Device index.
        device: usize,
        /// Attempt number.
        attempt: u32,
        /// Whether this copy is a hedge duplicate.
        hedge: bool,
        /// Time spent waiting in the device queue, ms.
        queue_wait_ms: f64,
        /// Service time until stage completion, ms.
        service_ms: f64,
    },
    /// One request's stage finished.
    StageComplete {
        /// Request index.
        req: usize,
        /// Kernel index.
        kernel: usize,
    },
    /// The hedging policy fired a duplicate stage onto another device.
    HedgeFired {
        /// Request index.
        req: usize,
        /// Kernel index.
        kernel: usize,
        /// Device the duplicate was sent to.
        device: usize,
    },
    /// The dynamic dispatch chooser overrode the interval plan's primary
    /// implementation for one request-stage.
    DynamicChoice {
        /// Request index.
        req: usize,
        /// Kernel index.
        kernel: usize,
        /// Device the stage was dispatched to.
        device: usize,
        /// Index into the policy's top-k alternate list (never 0 — the
        /// primary choice is not reported as an override).
        alt: u8,
        /// Frontier implementation index of the chosen alternate.
        impl_index: usize,
    },
    /// An idle device poached a queued stage from a backlogged peer
    /// (dynamic dispatch layer).
    WorkSteal {
        /// Request index.
        req: usize,
        /// Kernel index.
        kernel: usize,
        /// Device the entry was stolen from.
        from: usize,
        /// Idle device the entry now runs on.
        to: usize,
    },
    /// A request completed all stages.
    ReqComplete {
        /// Request index.
        req: usize,
        /// End-to-end latency, ms.
        latency_ms: f64,
    },
    /// A request was cancelled at its deadline.
    ReqTimedOut {
        /// Request index.
        req: usize,
    },
    /// A request failed permanently (retries exhausted).
    ReqFailed {
        /// Request index.
        req: usize,
    },
    /// A request was cancelled for another reason (device went down and
    /// lifecycle policy gave up, segment drain, ...).
    ReqCancelled {
        /// Request index.
        req: usize,
    },
    /// A fault-plan event was applied to a device.
    Fault {
        /// Device index.
        device: usize,
        /// Fault kind label ("fail-stop" / "slowdown" / "recover").
        kind: &'static str,
    },
    /// One control-loop interval summary from the runtime.
    Interval {
        /// Interval index within the trace.
        index: usize,
        /// Interval start, sim-ms.
        start_ms: f64,
        /// Interval length, ms.
        dur_ms: f64,
        /// Offered load for the interval, requests/s.
        offered_rps: f64,
        /// The monitor's load estimate the plan was chosen for, req/s.
        load_est_rps: f64,
        /// Whether the optimizer switched policy this interval.
        policy_changed: bool,
        /// Why the interval planned the way it did ("hold",
        /// "qos-pressure", "power-save", "degraded", "forced",
        /// "initial").
        reason: &'static str,
        /// Model-predicted p99 for the chosen policy, ms.
        predicted_p99_ms: f64,
        /// Observed p99 over the interval, ms.
        observed_p99_ms: f64,
        /// Mean power draw over the interval, W.
        power_w: f64,
        /// Requests completed in the interval.
        completed: usize,
        /// QoS violations in the interval.
        violations: usize,
    },
    /// The cluster router assigned arrivals to a node this interval.
    Route {
        /// Node index.
        node: usize,
        /// Requests routed to the node.
        assigned: usize,
    },
    /// The cluster router shed requests (every node saturated or down).
    Shed {
        /// Requests shed this interval.
        count: usize,
    },
    /// A per-node circuit breaker changed state.
    BreakerTransition {
        /// Node index.
        node: usize,
        /// Previous state label ("closed" / "open" / "half-open").
        from: &'static str,
        /// New state label.
        to: &'static str,
    },
    /// The power governor re-split the cluster budget.
    GovernorSplit {
        /// Node index.
        node: usize,
        /// New node power cap, W.
        cap_w: f64,
    },
    /// The autoscaler activated a node (it starts warming up).
    ScaleUp {
        /// Node index.
        node: usize,
        /// When the node finishes warming and becomes routable, sim-ms.
        ready_ms: f64,
    },
    /// The autoscaler drained a node out of service.
    ScaleDown {
        /// Node index.
        node: usize,
        /// Requests cancelled by the drain (redistributed by the router).
        drained: usize,
    },
    /// A spot node's revocation notice was acted on: the driver drained
    /// it ahead of the scripted fail-stop deadline.
    SpotRevoke {
        /// Node index.
        node: usize,
        /// When the capacity actually disappears, sim-ms.
        deadline_ms: f64,
        /// Requests cancelled by the proactive drain.
        drained: usize,
    },
    /// Per-class admission summary for one interval (multi-tenant
    /// routing only).
    ClassAdmission {
        /// QoS class index.
        class: usize,
        /// Requests admitted to some node.
        admitted: usize,
        /// Requests still deferred at interval end.
        deferred: usize,
        /// Requests shed.
        shed: usize,
    },
}

impl Event {
    /// Short stable label for the variant (used by exporters and CSV
    /// summaries).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ReqEnqueue { .. } => "req-enqueue",
            Event::StageDispatch { .. } => "stage-dispatch",
            Event::StageStranded { .. } => "stage-stranded",
            Event::ExecStart { .. } => "exec-start",
            Event::StageStart { .. } => "stage-start",
            Event::StageComplete { .. } => "stage-complete",
            Event::HedgeFired { .. } => "hedge-fired",
            Event::DynamicChoice { .. } => "dynamic-choice",
            Event::WorkSteal { .. } => "work-steal",
            Event::ReqComplete { .. } => "req-complete",
            Event::ReqTimedOut { .. } => "req-timed-out",
            Event::ReqFailed { .. } => "req-failed",
            Event::ReqCancelled { .. } => "req-cancelled",
            Event::Fault { .. } => "fault",
            Event::Interval { .. } => "interval",
            Event::Route { .. } => "route",
            Event::Shed { .. } => "shed",
            Event::BreakerTransition { .. } => "breaker",
            Event::GovernorSplit { .. } => "governor-split",
            Event::ScaleUp { .. } => "scale-up",
            Event::ScaleDown { .. } => "scale-down",
            Event::SpotRevoke { .. } => "spot-revoke",
            Event::ClassAdmission { .. } => "class-admission",
        }
    }
}

/// One recorded event with its ordering key: sim time, then a stable
/// per-buffer sequence number, plus the track (cluster node) it came
/// from. Samples in a [`crate::MemRecorder`] buffer are totally ordered
/// by `(t_ms, seq)` by construction — `seq` increases monotonically and
/// ties in `t_ms` resolve by emission order, which the simulator keeps
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sim time the event was recorded at, ms.
    pub t_ms: f64,
    /// Stable sequence number within the owning buffer.
    pub seq: u64,
    /// Track (0 = single node / cluster driver, 1.. = cluster nodes).
    pub track: u32,
    /// The event.
    pub event: Event,
}
