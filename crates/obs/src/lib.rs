//! poly-obs: structured telemetry for the Poly reproduction.
//!
//! The paper's runtime is a monitor→model→optimizer feedback loop (§6,
//! Fig. 9); this crate gives the reproduction the visibility an operator
//! of such a loop needs: *why* an interval re-planned, which device each
//! request's stages actually ran on, and where tail latency is spent.
//!
//! Three pieces:
//!
//! * an [`Event`] schema covering the request lifecycle inside the DES
//!   (enqueue → dispatch → execute → complete/cancel/hedge), per-interval
//!   runtime decisions (load estimate, re-plan reason, predicted vs.
//!   observed p99, power draw), and cluster control actions (routing,
//!   breaker transitions, governor budget re-splits);
//! * a [`Recorder`] trait with a zero-cost [`NullRecorder`] and an
//!   in-memory [`MemRecorder`] whose clones share one buffer, so a
//!   caller keeps a handle while the simulator records into it;
//! * exporters: [`chrome_trace_json`] renders the control/device view as
//!   Chrome `trace_event` JSON (loadable in `chrome://tracing` or
//!   Perfetto), and [`summarize`]/[`HistogramSummary`] answer latency
//!   breakdown queries over the raw samples.
//!
//! Determinism contract: recording never touches simulator state (the
//! recorder keeps its own sequence counter), events are keyed by sim
//! time plus a stable per-buffer sequence number, and every exporter
//! iterates samples in that order with fixed-precision float formatting
//! — so exported artifacts are byte-identical across `--jobs` counts and
//! the committed reference CSVs are unchanged when recording is off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod hist;
mod recorder;

pub use chrome::chrome_trace_json;
pub use event::{Event, Sample};
pub use hist::{latency_summary, queue_wait_summary, service_summary, summarize, HistogramSummary};
pub use recorder::{MemRecorder, NullRecorder, Recorder};
