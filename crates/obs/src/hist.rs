//! In-memory histogram queries over recorded samples: latency-breakdown
//! summaries (queue wait, service time, end-to-end latency) computed
//! directly from the per-request stage events.

use crate::event::{Event, Sample};

/// Percentile summary of one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: usize,
    /// Smallest observation.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((q * sorted.len() as f64).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx]
}

/// Summarize a set of observations; `None` when empty. Values sort by
/// total order, so the result is deterministic for any input order.
#[must_use]
pub fn summarize(values: &[f64]) -> Option<HistogramSummary> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    Some(HistogramSummary {
        count: v.len(),
        min: v[0],
        p50: percentile(&v, 0.50),
        p95: percentile(&v, 0.95),
        p99: percentile(&v, 0.99),
        max: *v.last().expect("non-empty"),
        mean,
    })
}

/// Queue-wait distribution from `StageStart` events, optionally
/// restricted to one kernel.
#[must_use]
pub fn queue_wait_summary(samples: &[Sample], kernel: Option<usize>) -> Option<HistogramSummary> {
    let vals: Vec<f64> = samples
        .iter()
        .filter_map(|s| match s.event {
            Event::StageStart {
                kernel: k,
                queue_wait_ms,
                ..
            } if kernel.is_none_or(|want| want == k) => Some(queue_wait_ms),
            _ => None,
        })
        .collect();
    summarize(&vals)
}

/// Service-time distribution from `StageStart` events, optionally
/// restricted to one kernel.
#[must_use]
pub fn service_summary(samples: &[Sample], kernel: Option<usize>) -> Option<HistogramSummary> {
    let vals: Vec<f64> = samples
        .iter()
        .filter_map(|s| match s.event {
            Event::StageStart {
                kernel: k,
                service_ms,
                ..
            } if kernel.is_none_or(|want| want == k) => Some(service_ms),
            _ => None,
        })
        .collect();
    summarize(&vals)
}

/// End-to-end latency distribution from `ReqComplete` events.
#[must_use]
pub fn latency_summary(samples: &[Sample]) -> Option<HistogramSummary> {
    let vals: Vec<f64> = samples
        .iter()
        .filter_map(|s| match s.event {
            Event::ReqComplete { latency_ms, .. } => Some(latency_ms),
            _ => None,
        })
        .collect();
    summarize(&vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_small_set() {
        let h = summarize(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.p50, 2.0);
        assert_eq!(h.p99, 3.0);
        assert_eq!(h.max, 3.0);
        assert!((h.mean - 2.0).abs() < 1e-12);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn stage_queries_filter_by_kernel() {
        let mk = |kernel, queue_wait_ms, service_ms| Sample {
            t_ms: 0.0,
            seq: 0,
            track: 0,
            event: Event::StageStart {
                req: 0,
                kernel,
                device: 0,
                attempt: 0,
                hedge: false,
                queue_wait_ms,
                service_ms,
            },
        };
        let samples = vec![mk(0, 1.0, 10.0), mk(1, 5.0, 20.0), mk(0, 3.0, 30.0)];
        let all = queue_wait_summary(&samples, None).unwrap();
        assert_eq!(all.count, 3);
        let k0 = queue_wait_summary(&samples, Some(0)).unwrap();
        assert_eq!(k0.count, 2);
        assert_eq!(k0.max, 3.0);
        let svc = service_summary(&samples, Some(1)).unwrap();
        assert_eq!(svc.mean, 20.0);
        assert!(latency_summary(&samples).is_none());
    }
}
