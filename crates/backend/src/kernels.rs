//! Representative CPU micro-kernels, sized from the IR's op counts.
//!
//! The CPU backend cannot run an application kernel's real code (there
//! is none — the IR is abstract), so it executes a *representative*
//! micro-kernel of the same computational class and op count: a blocked
//! GEMM for compute-dense kernels, a 3-point stencil sweep for stencil
//! patterns, and a streaming multiply-reduce for bandwidth-bound ones.
//! Work fans out over a [`poly_par`] pool in a **fixed** number of
//! chunks combined in index order, so the f32 result checksum is
//! bit-identical for any thread count; only the wall-clock measurement
//! varies.
//!
//! Kernels whose total op count exceeds [`MICRO_OPS_CAP`] run a capped
//! share and scale the measured latency by the op ratio — calibration
//! stays fast on the big LSTM kernels without losing the measured
//! throughput signal.

use poly_ir::{KernelProfile, PatternKind};
use std::time::Instant;

/// Op-count ceiling one micro-kernel execution actually runs. Fixed (no
/// env knob) so the committed `backend_model.csv` dimensions and
/// checksums never depend on the environment.
pub const MICRO_OPS_CAP: f64 = 5.0e7;

/// Minimum ops per timed run: smaller kernels repeat until they cross
/// this floor so the wall-clock sample rises above timer noise.
const MICRO_OPS_FLOOR: f64 = 1.0e7;

/// Fixed parallel chunk count. Results are combined in chunk-index
/// order, which makes checksums independent of the worker count.
pub const MICRO_CHUNKS: usize = 64;

/// The computational class a kernel profile maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroKernelClass {
    /// Compute-dense (high ops/element): blocked GEMM.
    Gemm,
    /// Stencil patterns present: 3-point 1-D stencil sweep.
    Stencil,
    /// Bandwidth-bound streaming: elementwise multiply + reduce.
    Stream,
}

impl MicroKernelClass {
    /// Stable label for CSV output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MicroKernelClass::Gemm => "gemm",
            MicroKernelClass::Stencil => "stencil",
            MicroKernelClass::Stream => "stream",
        }
    }
}

/// One sized micro-kernel: what will actually run on the thread pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroKernel {
    /// Computational class.
    pub class: MicroKernelClass,
    /// Problem dimension: GEMM side length, or element count.
    pub dim: usize,
    /// Scalar ops one execution of the sized problem performs.
    pub ops_per_run: f64,
    /// Timed repetitions of the sized problem.
    pub repeats: usize,
    /// Ops of the full application kernel this run represents
    /// (`profile.total_flops()`); the measured latency is scaled by
    /// `total_ops / ops_per_run`.
    pub total_ops: f64,
}

/// What one measured execution produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroRun {
    /// Wall-clock of one sized run, in milliseconds (elapsed / repeats).
    pub run_ms: f64,
    /// Latency attributed to the full kernel, in milliseconds
    /// (`run_ms × total_ops / ops_per_run`).
    pub latency_ms: f64,
    /// Achieved throughput of the sized run, in Gflop/s.
    pub gflops: f64,
    /// f32 result checksum — identical for any thread count.
    pub checksum: f64,
}

/// Deterministic f32 in roughly `[-1, 1)` from an index (splitmix-style
/// hash; no RNG state, so chunk workers need no shared stream).
fn lcg_f32(i: u64) -> f32 {
    let mut x = i
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x6A09_E667);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    ((x >> 40) as f32) / 8_388_608.0 - 1.0
}

impl MicroKernel {
    /// Size a micro-kernel for `profile`: classify by pattern mix and
    /// arithmetic density, then choose dimensions so one run stays under
    /// [`MICRO_OPS_CAP`] ops (with repeats pulling tiny kernels up to a
    /// measurable floor).
    #[must_use]
    pub fn for_profile(profile: &KernelProfile) -> Self {
        let total_ops = profile.total_flops().max(1.0);
        let capped = total_ops.min(MICRO_OPS_CAP);
        let has_stencil = profile
            .pattern_kinds
            .iter()
            .any(|k| matches!(k, PatternKind::Stencil { .. }));
        let class = if has_stencil {
            MicroKernelClass::Stencil
        } else if profile.ops_per_element() >= 8.0 {
            MicroKernelClass::Gemm
        } else {
            MicroKernelClass::Stream
        };
        let (dim, ops_per_run) = match class {
            MicroKernelClass::Gemm => {
                let s = ((capped / 2.0).cbrt() as usize).clamp(32, 384);
                (s, 2.0 * (s * s * s) as f64)
            }
            MicroKernelClass::Stencil => {
                let n = ((capped / 5.0) as usize).clamp(1 << 12, 1 << 23);
                (n, 5.0 * n as f64)
            }
            MicroKernelClass::Stream => {
                let n = ((capped / 2.0) as usize).clamp(1 << 12, 1 << 24);
                (n, 2.0 * n as f64)
            }
        };
        let repeats = ((MICRO_OPS_FLOOR / ops_per_run).ceil() as usize).max(1);
        Self {
            class,
            dim,
            ops_per_run,
            repeats,
            total_ops,
        }
    }

    /// Execute on up to `threads` workers, measuring wall clock.
    #[must_use]
    pub fn run(&self, threads: usize) -> MicroRun {
        let start = Instant::now();
        let mut checksum = 0.0f64;
        for rep in 0..self.repeats {
            // Perturb the data seed per repeat so the compiler cannot
            // hoist the computation out of the repeat loop.
            checksum = match self.class {
                MicroKernelClass::Gemm => gemm(self.dim, rep as u64, threads),
                MicroKernelClass::Stencil => stencil(self.dim, rep as u64, threads),
                MicroKernelClass::Stream => stream(self.dim, rep as u64, threads),
            };
        }
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        let run_ms = (elapsed_ms / self.repeats as f64).max(1e-6);
        MicroRun {
            run_ms,
            latency_ms: run_ms * (self.total_ops / self.ops_per_run),
            gflops: self.ops_per_run / (run_ms * 1e6),
            checksum,
        }
    }
}

/// Chunk `[begin, end)` of `0..n` for chunk `c` of [`MICRO_CHUNKS`].
fn chunk_bounds(n: usize, c: usize) -> (usize, usize) {
    (n * c / MICRO_CHUNKS, n * (c + 1) / MICRO_CHUNKS)
}

/// Blocked `C = A × B` over row bands; returns the checksum of `C`.
fn gemm(s: usize, seed: u64, threads: usize) -> f64 {
    let a: Vec<f32> = (0..s * s).map(|i| lcg_f32(i as u64 ^ seed)).collect();
    let b: Vec<f32> = (0..s * s)
        .map(|i| lcg_f32((i as u64).wrapping_add(0x5DEE_CE66) ^ seed))
        .collect();
    let chunks: Vec<usize> = (0..MICRO_CHUNKS).collect();
    let partials = poly_par::par_map(threads, &chunks, |_, &c| {
        let (lo, hi) = chunk_bounds(s, c);
        let mut sum = 0.0f64;
        let mut row = vec![0.0f32; s];
        for i in lo..hi {
            row.iter_mut().for_each(|v| *v = 0.0);
            for (l, &aval) in a[i * s..(i + 1) * s].iter().enumerate() {
                let brow = &b[l * s..(l + 1) * s];
                for (j, &bval) in brow.iter().enumerate() {
                    row[j] += aval * bval;
                }
            }
            sum += row.iter().map(|&v| f64::from(v)).sum::<f64>();
        }
        sum
    });
    partials.iter().sum()
}

/// One 3-point stencil sweep; returns the checksum of the output.
fn stencil(n: usize, seed: u64, threads: usize) -> f64 {
    let x: Vec<f32> = (0..n).map(|i| lcg_f32(i as u64 ^ seed)).collect();
    let chunks: Vec<usize> = (0..MICRO_CHUNKS).collect();
    let partials = poly_par::par_map(threads, &chunks, |_, &c| {
        let (lo, hi) = chunk_bounds(n, c);
        let mut sum = 0.0f64;
        for i in lo..hi {
            let left = if i == 0 { x[n - 1] } else { x[i - 1] };
            let right = if i + 1 == n { x[0] } else { x[i + 1] };
            let y = 0.25f32 * left + 0.5f32 * x[i] + 0.25f32 * right;
            sum += f64::from(y);
        }
        sum
    });
    partials.iter().sum()
}

/// Streaming multiply-reduce; returns the reduction value.
fn stream(n: usize, seed: u64, threads: usize) -> f64 {
    let x: Vec<f32> = (0..n).map(|i| lcg_f32(i as u64 ^ seed)).collect();
    let chunks: Vec<usize> = (0..MICRO_CHUNKS).collect();
    let partials = poly_par::par_map(threads, &chunks, |_, &c| {
        let (lo, hi) = chunk_bounds(n, c);
        let mut acc = 0.0f32;
        for &v in &x[lo..hi] {
            acc += v * v;
        }
        f64::from(acc)
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_ir::{KernelBuilder, OpFunc, Shape};

    fn profile(kind: PatternKind, shape: Shape, iters: u64) -> KernelProfile {
        KernelBuilder::new("k")
            .pattern("p", kind, shape, &[OpFunc::Mac])
            .iterations(iters)
            .build()
            .unwrap()
            .profile()
    }

    #[test]
    fn classification_follows_pattern_mix() {
        let dense = profile(PatternKind::Map, Shape::d2(512, 512), 100);
        // Map over d2 has 1 Mac (2 ops) per element — stream class.
        assert_eq!(
            MicroKernel::for_profile(&dense).class,
            MicroKernelClass::Stream
        );
        let st = profile(PatternKind::Stencil { neighbors: 3 }, Shape::d1(4096), 10);
        assert_eq!(
            MicroKernel::for_profile(&st).class,
            MicroKernelClass::Stencil
        );
    }

    #[test]
    fn sizing_respects_the_ops_cap() {
        let big = profile(PatternKind::Map, Shape::d2(2048, 2048), 10_000);
        let mk = MicroKernel::for_profile(&big);
        assert!(mk.ops_per_run <= MICRO_OPS_CAP * 1.01, "{mk:?}");
        assert!(mk.total_ops > mk.ops_per_run);
        assert_eq!(mk.repeats, 1);
    }

    #[test]
    fn tiny_kernels_repeat_to_the_floor() {
        let tiny = profile(PatternKind::Map, Shape::d1(64), 1);
        let mk = MicroKernel::for_profile(&tiny);
        assert!(mk.repeats >= 1);
        assert!(mk.ops_per_run * mk.repeats as f64 >= MICRO_OPS_FLOOR * 0.99);
    }

    #[test]
    fn checksum_is_thread_count_independent() {
        for mk in [
            MicroKernel {
                class: MicroKernelClass::Gemm,
                dim: 96,
                ops_per_run: 2.0 * 96.0f64.powi(3),
                repeats: 1,
                total_ops: 2.0 * 96.0f64.powi(3),
            },
            MicroKernel {
                class: MicroKernelClass::Stencil,
                dim: 1 << 14,
                ops_per_run: 5.0 * (1 << 14) as f64,
                repeats: 1,
                total_ops: 5.0 * (1 << 14) as f64,
            },
            MicroKernel {
                class: MicroKernelClass::Stream,
                dim: 1 << 14,
                ops_per_run: 2.0 * (1 << 14) as f64,
                repeats: 1,
                total_ops: 2.0 * (1 << 14) as f64,
            },
        ] {
            let c1 = mk.run(1).checksum;
            let c4 = mk.run(4).checksum;
            assert_eq!(c1.to_bits(), c4.to_bits(), "{:?}", mk.class);
            assert!(c1.abs() > 0.0, "degenerate checksum for {:?}", mk.class);
        }
    }

    #[test]
    fn measured_latency_scales_with_the_op_ratio() {
        let mk = MicroKernel {
            class: MicroKernelClass::Stream,
            dim: 1 << 14,
            ops_per_run: 2.0 * (1 << 14) as f64,
            repeats: 4,
            total_ops: 8.0 * (1 << 14) as f64,
        };
        let run = mk.run(2);
        assert!(run.run_ms > 0.0);
        assert!((run.latency_ms / run.run_ms - 4.0).abs() < 1e-9);
        assert!(run.gflops > 0.0);
    }
}
