//! The analytical backend: the existing GPU/FPGA models behind the
//! [`Client`] API. Estimates are produced by the *same* model calls the
//! design-space explorer makes, so for any design point the executable's
//! estimate is bit-identical to the point's — the whole legacy pipeline
//! flows through unchanged.

use crate::{
    BackendError, Capabilities, Client, DeviceDescription, ExecReport, Executable, KernelWorkload,
    MemoryDescription, PlatformKind,
};
use poly_device::{DeviceKind, Estimate, FpgaModel, GpuModel};
use poly_dse::Tuning;

/// Client wrapping the analytical [`GpuModel`] / [`FpgaModel`] pair of
/// one hardware setting, advertising `gpus` GPU devices followed by
/// `fpgas` FPGA devices (ordinal order matches the legacy
/// `Pool::heterogeneous` layout).
#[derive(Debug, Clone)]
pub struct AnalyticalClient {
    gpu: GpuModel,
    fpga: FpgaModel,
    gpus: usize,
    fpgas: usize,
}

impl AnalyticalClient {
    /// Client for `gpus` + `fpgas` devices of the given models.
    #[must_use]
    pub fn new(gpu: GpuModel, fpga: FpgaModel, gpus: usize, fpgas: usize) -> Self {
        Self {
            gpu,
            fpga,
            gpus,
            fpgas,
        }
    }

    /// The wrapped GPU model.
    #[must_use]
    pub fn gpu(&self) -> &GpuModel {
        &self.gpu
    }

    /// The wrapped FPGA model.
    #[must_use]
    pub fn fpga(&self) -> &FpgaModel {
        &self.fpga
    }

    fn gpu_description(&self, ordinal: usize) -> DeviceDescription {
        let s = self.gpu.spec();
        DeviceDescription {
            ordinal,
            platform: PlatformKind::Accel(DeviceKind::Gpu),
            name: s.name.clone(),
            memory: MemoryDescription {
                bytes: (s.mem_gb * (1u64 << 30) as f64) as u64,
                bandwidth_gbs: s.mem_bandwidth_gbs,
            },
            peak_power_w: s.peak_power_w,
            idle_power_w: s.idle_power_w,
            bitstream_slots: 0,
        }
    }

    fn fpga_description(&self, ordinal: usize) -> DeviceDescription {
        let s = self.fpga.spec();
        DeviceDescription {
            ordinal,
            platform: PlatformKind::Accel(DeviceKind::Fpga),
            name: s.name.clone(),
            memory: MemoryDescription {
                bytes: s.bram_bytes,
                bandwidth_gbs: s.mem_bandwidth_gbs,
            },
            peak_power_w: s.peak_power_w,
            idle_power_w: s.static_power_w,
            bitstream_slots: 1,
        }
    }
}

impl Client for AnalyticalClient {
    fn name(&self) -> &'static str {
        "analytical"
    }

    fn capabilities(&self) -> Capabilities {
        let mut devices = Vec::with_capacity(self.gpus + self.fpgas);
        for _ in 0..self.gpus {
            devices.push(self.gpu_description(devices.len()));
        }
        for _ in 0..self.fpgas {
            devices.push(self.fpga_description(devices.len()));
        }
        Capabilities {
            backend: "analytical",
            measured: false,
            devices,
        }
    }

    fn compile(&self, workload: &KernelWorkload) -> Result<Box<dyn Executable>, BackendError> {
        let tuning = workload
            .tuning
            .as_ref()
            .ok_or(BackendError::MissingTuning)?;
        let (estimate, device) = match tuning {
            Tuning::Gpu(t) => {
                if self.gpus == 0 {
                    return Err(BackendError::UnsupportedPlatform(PlatformKind::Accel(
                        DeviceKind::Gpu,
                    )));
                }
                (
                    self.gpu.estimate(&workload.profile, t),
                    self.gpu_description(0),
                )
            }
            Tuning::Fpga(t) => {
                if self.fpgas == 0 {
                    return Err(BackendError::UnsupportedPlatform(PlatformKind::Accel(
                        DeviceKind::Fpga,
                    )));
                }
                let est = self
                    .fpga
                    .estimate(&workload.profile, t)
                    .map_err(|e| BackendError::DoesNotFit(e.to_string()))?;
                (est, self.fpga_description(self.gpus))
            }
        };
        Ok(Box::new(AnalyticalExecutable {
            kernel: workload.name.clone(),
            device,
            estimate,
        }))
    }
}

/// One kernel implementation evaluated by the analytical models:
/// executing it just returns the model's estimate.
#[derive(Debug, Clone)]
pub struct AnalyticalExecutable {
    kernel: String,
    device: DeviceDescription,
    estimate: Estimate,
}

impl Executable for AnalyticalExecutable {
    fn kernel(&self) -> &str {
        &self.kernel
    }

    fn device(&self) -> &DeviceDescription {
        &self.device
    }

    fn estimate(&self) -> Estimate {
        self.estimate.clone()
    }

    fn execute(&self) -> Result<ExecReport, BackendError> {
        Ok(ExecReport::from_estimate(&self.estimate))
    }
}
