//! Calibration harness: per-kernel analytical-vs-measured latency.
//!
//! For each micro-kernel class present in the application, one fixed
//! *reference* problem is measured first to establish the host's
//! sustained Gflop/s in that class. Each application kernel is then
//! predicted from its op count at the reference rate (the same shape of
//! reasoning the analytical GPU/FPGA models apply to their platforms)
//! and the prediction is compared with the kernel's own measured
//! execution. The relative-error distribution is the first end-to-end
//! validation signal for op-count-driven latency modeling in this
//! repository.

use crate::kernels::{MicroKernel, MicroKernelClass};
use crate::CpuClient;
use poly_ir::KernelProfile;

/// One kernel's calibration row.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Kernel name.
    pub kernel: String,
    /// Micro-kernel class it mapped to.
    pub class: &'static str,
    /// Latency predicted from the class reference rate, ms.
    pub predicted_ms: f64,
    /// Measured (op-ratio-scaled) latency, ms.
    pub measured_ms: f64,
    /// `|measured − predicted| / measured`.
    pub rel_err: f64,
    /// Achieved throughput of the measured run, Gflop/s.
    pub gflops: f64,
    /// Result checksum (thread-count independent).
    pub checksum: f64,
}

/// The calibration sweep's aggregate error statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSummary {
    /// Per-kernel rows in input order.
    pub per_kernel: Vec<Calibration>,
    /// Mean relative error.
    pub mean_rel_err: f64,
    /// Median relative error.
    pub median_rel_err: f64,
    /// Maximum relative error.
    pub max_rel_err: f64,
    /// Measured sustained Gflop/s per class: `(label, gflops)`.
    pub class_gflops: Vec<(&'static str, f64)>,
}

/// Fixed reference problem for a class (sizes chosen to be comfortably
/// measurable and cache-resident-ish without dwarfing the sweep).
fn reference(class: MicroKernelClass) -> MicroKernel {
    let (dim, ops) = match class {
        MicroKernelClass::Gemm => (256usize, 2.0 * 256.0f64.powi(3)),
        MicroKernelClass::Stencil => (1 << 21, 5.0 * (1u64 << 21) as f64),
        MicroKernelClass::Stream => (1 << 22, 2.0 * (1u64 << 22) as f64),
    };
    MicroKernel {
        class,
        dim,
        ops_per_run: ops,
        repeats: 2,
        total_ops: ops,
    }
}

/// Run the calibration sweep over `(name, profile)` kernels on `client`.
///
/// # Panics
/// Panics if `kernels` is empty.
#[must_use]
pub fn calibrate(client: &CpuClient, kernels: &[(String, KernelProfile)]) -> CalibrationSummary {
    assert!(!kernels.is_empty(), "nothing to calibrate");
    let threads = client.threads();

    // Reference rates, one measurement per class present.
    let mut class_gflops: Vec<(&'static str, f64)> = Vec::new();
    let mut rate_of = |class: MicroKernelClass| -> f64 {
        if let Some(&(_, g)) = class_gflops.iter().find(|(l, _)| *l == class.label()) {
            return g;
        }
        let run = reference(class).run(threads);
        class_gflops.push((class.label(), run.gflops));
        run.gflops
    };

    let mut per_kernel = Vec::with_capacity(kernels.len());
    for (name, profile) in kernels {
        let micro = MicroKernel::for_profile(profile);
        let ref_gflops = rate_of(micro.class);
        // Predicted: total ops at the class's measured sustained rate.
        let predicted_ms = micro.total_ops / (ref_gflops * 1e6);
        let report = client.measure(name, profile);
        let measured_ms = report.latency_ms;
        per_kernel.push(Calibration {
            kernel: name.clone(),
            class: micro.class.label(),
            predicted_ms,
            measured_ms,
            rel_err: (measured_ms - predicted_ms).abs() / measured_ms.max(1e-9),
            gflops: report.gflops,
            checksum: report.checksum,
        });
    }

    let mut errs: Vec<f64> = per_kernel.iter().map(|c| c.rel_err).collect();
    errs.sort_by(f64::total_cmp);
    let mean_rel_err = errs.iter().sum::<f64>() / errs.len() as f64;
    let median_rel_err = errs[errs.len() / 2];
    let max_rel_err = *errs.last().expect("non-empty");
    CalibrationSummary {
        per_kernel,
        mean_rel_err,
        median_rel_err,
        max_rel_err,
        class_gflops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_ir::{KernelBuilder, OpFunc, PatternKind, Shape};

    #[test]
    fn sweep_produces_finite_errors_and_reference_rates() {
        let mk = |name: &str, w: u64, iters: u64| {
            (
                name.to_string(),
                KernelBuilder::new(name)
                    .pattern("m", PatternKind::Map, Shape::d2(w, 64), &[OpFunc::Mac])
                    .iterations(iters)
                    .build()
                    .unwrap()
                    .profile(),
            )
        };
        let kernels = vec![mk("a", 128, 20), mk("b", 256, 40)];
        let client = CpuClient::new(2);
        let summary = calibrate(&client, &kernels);
        assert_eq!(summary.per_kernel.len(), 2);
        assert!(summary.mean_rel_err.is_finite());
        assert!(summary.max_rel_err >= summary.median_rel_err);
        assert!(!summary.class_gflops.is_empty());
        for (_, g) in &summary.class_gflops {
            assert!(*g > 0.0);
        }
        for c in &summary.per_kernel {
            assert!(c.predicted_ms > 0.0 && c.measured_ms > 0.0);
        }
    }
}
