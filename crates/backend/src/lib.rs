//! # poly-backend — pluggable execution backends behind a PJRT-style API
//!
//! The analytical GPU/FPGA models used to be welded directly into
//! `crates/device` and the DES engine; there was no seam where a
//! different executor could plug in. This crate provides that seam as a
//! layered [`Client`] / [`DeviceDescription`] / [`Executable`] trait API
//! (in the shape of PJRT's client/device/loaded-executable layering):
//!
//! - a **client** advertises its capabilities — which devices it carries,
//!   their platform kinds, memory, power envelope, and bitstream
//!   residency slots — and compiles kernel workloads into executables;
//! - an **executable** is one kernel bound to one device: it can be
//!   *estimated* (model prediction) and *executed* (which on a measured
//!   backend really runs the workload);
//! - [`accel_pool`] derives the scheduler's [`Pool`] from whatever
//!   accelerator devices a client advertises, replacing hand-built
//!   `Pool::heterogeneous` special-casing with capability-driven
//!   construction.
//!
//! Two backends ship here:
//!
//! - [`AnalyticalClient`] wraps the existing [`poly_device`] GPU/FPGA
//!   models. Its estimates are produced by the *same* model calls the
//!   design-space explorer makes, so it is bit-identical to the legacy
//!   path by construction.
//! - [`CpuClient`] really executes representative micro-kernels
//!   (GEMM / stencil / streaming reduce, sized from the IR's op counts)
//!   on a [`poly_par`] thread pool and reports measured wall-clock
//!   latency and derived energy. Numeric results (checksums) are
//!   deterministic for any thread count; latency samples are measured,
//!   and a per-client cache makes repeated runs of the same kernel
//!   return identical reports within one process.
//!
//! The [`calibrate`](crate::calibrate::calibrate) harness compares a
//! simple CPU roofline prediction against measured execution per kernel
//! — the model-error distribution reported by the `experiments backend`
//! figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analytical;
pub mod calibrate;
mod cpu;
mod kernels;

pub use analytical::{AnalyticalClient, AnalyticalExecutable};
pub use cpu::{CpuClient, CpuExecutable, CPU_IDLE_POWER_W, CPU_PEAK_POWER_W};
pub use kernels::{MicroKernel, MicroKernelClass, MicroRun, MICRO_CHUNKS, MICRO_OPS_CAP};

use poly_device::{DeviceKind, Estimate};
use poly_ir::{Kernel, KernelProfile};
use poly_sched::Pool;
use std::fmt;
use std::sync::Arc;

/// The platform a backend device belongs to. The accelerator kinds the
/// scheduler plans over stay [`DeviceKind`]; host execution (the CPU
/// backend) is a separate platform that never enters a [`Pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// A schedulable accelerator (GPU or FPGA).
    Accel(DeviceKind),
    /// The host CPU (measured execution; not pool-schedulable).
    Cpu,
}

impl PlatformKind {
    /// Stable short label (`"gpu"`, `"fpga"`, `"cpu"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PlatformKind::Accel(k) => k.name(),
            PlatformKind::Cpu => "cpu",
        }
    }

    /// Parse a label produced by [`label`](Self::label).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "gpu" => Some(PlatformKind::Accel(DeviceKind::Gpu)),
            "fpga" => Some(PlatformKind::Accel(DeviceKind::Fpga)),
            "cpu" => Some(PlatformKind::Cpu),
            _ => None,
        }
    }
}

impl fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Memory attached to one backend device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryDescription {
    /// Capacity in bytes.
    pub bytes: u64,
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

/// Everything the management layer needs to know about one device a
/// client carries — the capability record behind capability-driven pool
/// construction and mixed-fleet provisioning.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceDescription {
    /// Position within the client's device list (pool id order for
    /// accelerators).
    pub ordinal: usize,
    /// Platform the device belongs to.
    pub platform: PlatformKind,
    /// Human-readable device name.
    pub name: String,
    /// Attached memory.
    pub memory: MemoryDescription,
    /// Board power at full load, in watts.
    pub peak_power_w: f64,
    /// Board power when idle/configured, in watts.
    pub idle_power_w: f64,
    /// Bitstream residency slots: how many kernel configurations the
    /// device holds at once (0 = not reconfigurable, i.e. GPUs and CPUs;
    /// 1 = single-bitstream FPGA).
    pub bitstream_slots: u32,
}

impl DeviceDescription {
    /// One-line machine-readable summary. Round-trips through
    /// [`parse_summary`](Self::parse_summary): every field is emitted
    /// with Rust's shortest-round-trip float formatting and the
    /// free-form name comes last.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} ordinal={} mem_bytes={} bw_gbs={} peak_w={} idle_w={} slots={} name={}",
            self.platform,
            self.ordinal,
            self.memory.bytes,
            self.memory.bandwidth_gbs,
            self.peak_power_w,
            self.idle_power_w,
            self.bitstream_slots,
            self.name,
        )
    }

    /// Parse a line produced by [`summary`](Self::summary).
    #[must_use]
    pub fn parse_summary(s: &str) -> Option<Self> {
        let mut parts = s.splitn(8, ' ');
        let platform = PlatformKind::parse(parts.next()?)?;
        fn field<'a>(part: Option<&'a str>, key: &str) -> Option<&'a str> {
            part?.strip_prefix(key)?.strip_prefix('=')
        }
        let ordinal = field(parts.next(), "ordinal")?.parse().ok()?;
        let bytes = field(parts.next(), "mem_bytes")?.parse().ok()?;
        let bandwidth_gbs = field(parts.next(), "bw_gbs")?.parse().ok()?;
        let peak_power_w = field(parts.next(), "peak_w")?.parse().ok()?;
        let idle_power_w = field(parts.next(), "idle_w")?.parse().ok()?;
        let bitstream_slots = field(parts.next(), "slots")?.parse().ok()?;
        let name = field(parts.next(), "name")?.to_string();
        Some(Self {
            ordinal,
            platform,
            name,
            memory: MemoryDescription {
                bytes,
                bandwidth_gbs,
            },
            peak_power_w,
            idle_power_w,
            bitstream_slots,
        })
    }
}

/// The capability set one client advertises: its backend label, whether
/// its reports are *measured* (real execution) or *modeled* (analytical
/// prediction), and the devices it carries in ordinal order.
#[derive(Debug, Clone, PartialEq)]
pub struct Capabilities {
    /// Stable backend label (`"analytical"`, `"cpu"`).
    pub backend: &'static str,
    /// Whether [`Executable::execute`] reports measured wall-clock time.
    pub measured: bool,
    /// Devices in ordinal order.
    pub devices: Vec<DeviceDescription>,
}

impl Capabilities {
    /// Accelerator kinds in ordinal order — the capability-driven input
    /// to [`Pool`] construction. CPU devices are not schedulable and do
    /// not appear.
    #[must_use]
    pub fn accel_kinds(&self) -> Vec<DeviceKind> {
        self.devices
            .iter()
            .filter_map(|d| match d.platform {
                PlatformKind::Accel(k) => Some(k),
                PlatformKind::Cpu => None,
            })
            .collect()
    }

    /// Whether any device of `platform` is present.
    #[must_use]
    pub fn supports(&self, platform: PlatformKind) -> bool {
        self.devices.iter().any(|d| d.platform == platform)
    }

    /// Worst-case power of the advertised devices, in watts.
    #[must_use]
    pub fn peak_power_w(&self) -> f64 {
        self.devices.iter().map(|d| d.peak_power_w).sum()
    }
}

/// The scheduler pool a client's advertised accelerators form, in
/// ordinal order. This is the capability-driven replacement for
/// hand-building `Pool::heterogeneous(gpus, fpgas)` at provisioning
/// sites: the pool is derived *from* what the backend says it has.
#[must_use]
pub fn accel_pool(client: &dyn Client) -> Pool {
    Pool::from_kinds(client.capabilities().accel_kinds())
}

/// One kernel workload handed to a backend for compilation: the kernel's
/// analyzed profile plus (for model-backed clients) the implementation
/// tuning to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelWorkload {
    /// Kernel name.
    pub name: String,
    /// Analyzed kernel profile (op counts, traffic, parallelism).
    pub profile: KernelProfile,
    /// Implementation parameters for model-backed clients (`None` lets
    /// the client pick; required by [`AnalyticalClient`], ignored by
    /// [`CpuClient`]).
    pub tuning: Option<poly_dse::Tuning>,
}

impl KernelWorkload {
    /// Workload for `kernel` with no tuning attached.
    #[must_use]
    pub fn from_kernel(kernel: &Kernel) -> Self {
        Self {
            name: kernel.name().to_string(),
            profile: kernel.profile(),
            tuning: None,
        }
    }

    /// Attach implementation tuning.
    #[must_use]
    pub fn with_tuning(mut self, tuning: poly_dse::Tuning) -> Self {
        self.tuning = Some(tuning);
        self
    }
}

/// What one execution produced: timing, power/energy, and (for measured
/// backends) the numeric checksum of the computed result — the
/// thread-count-independent witness that real work happened.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// End-to-end latency of the execution, in milliseconds. Measured
    /// wall clock on measured backends (scaled up when the micro-kernel
    /// ran a capped share of the full op count), model prediction
    /// otherwise.
    pub latency_ms: f64,
    /// Per-request device occupancy, in milliseconds.
    pub service_ms: f64,
    /// Requests served per execution.
    pub batch: u32,
    /// Board power while executing, in watts.
    pub active_power_w: f64,
    /// Board power while idle, in watts.
    pub idle_power_w: f64,
    /// Energy of the execution, in millijoules (`active × latency`).
    pub energy_mj: f64,
    /// Whether `latency_ms` is measured wall clock (vs. modeled).
    pub measured: bool,
    /// Checksum of the computed result (0.0 on modeled backends).
    /// Deterministic for any thread count on the CPU backend.
    pub checksum: f64,
    /// Achieved arithmetic throughput in Gflop/s (0.0 on modeled
    /// backends).
    pub gflops: f64,
}

impl ExecReport {
    /// Report equivalent to an analytical [`Estimate`] (modeled, no
    /// checksum).
    #[must_use]
    pub fn from_estimate(est: &Estimate) -> Self {
        Self {
            latency_ms: est.latency_ms,
            service_ms: est.service_ms,
            batch: est.batch,
            active_power_w: est.active_power_w,
            idle_power_w: est.idle_power_w,
            energy_mj: est.active_power_w * est.latency_ms,
            measured: false,
            checksum: 0.0,
            gflops: 0.0,
        }
    }
}

/// Errors a backend can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The workload lacked the tuning this client requires.
    MissingTuning,
    /// The tuning targets a platform this client has no device for.
    UnsupportedPlatform(PlatformKind),
    /// The implementation does not fit the device (FPGA overflow).
    DoesNotFit(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::MissingTuning => write!(f, "workload carries no implementation tuning"),
            BackendError::UnsupportedPlatform(p) => {
                write!(f, "client has no {p} device")
            }
            BackendError::DoesNotFit(why) => write!(f, "implementation does not fit: {why}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// One kernel compiled for one device: estimable and executable.
pub trait Executable: Send + Sync {
    /// Kernel name the executable implements.
    fn kernel(&self) -> &str;
    /// The device the executable is bound to.
    fn device(&self) -> &DeviceDescription;
    /// Model-predicted metrics (on measured backends, a simple host
    /// roofline — calibration measures how far off it is).
    fn estimate(&self) -> Estimate;
    /// Execute the workload and report what happened. Measured backends
    /// really run it; analytical backends return the estimate.
    ///
    /// # Errors
    /// Backend-specific failures (none today — reserved for real device
    /// backends that can fail at run time).
    fn execute(&self) -> Result<ExecReport, BackendError>;
}

/// A backend client: advertises capabilities and compiles workloads.
pub trait Client: Send + Sync + fmt::Debug {
    /// Stable backend label (`"analytical"`, `"cpu"`).
    fn name(&self) -> &'static str;
    /// The capability set (devices, platforms, memory, power).
    fn capabilities(&self) -> Capabilities;
    /// Compile `workload` into an executable bound to the best-matching
    /// device.
    ///
    /// # Errors
    /// [`BackendError::MissingTuning`] /
    /// [`BackendError::UnsupportedPlatform`] /
    /// [`BackendError::DoesNotFit`] when the workload cannot be placed.
    fn compile(&self, workload: &KernelWorkload) -> Result<Box<dyn Executable>, BackendError>;
}

/// Which execution backend a node runs its kernels on. Stored in the
/// node provisioning ([`Default`] = analytical, the bit-identical legacy
/// path) and overridable per run; cluster nodes each carry their own,
/// so a mixed fleet provisions different backends on different nodes.
#[derive(Debug, Clone, Default)]
pub enum ExecBackend {
    /// Analytical device models drive the DES (the legacy path,
    /// bit-identical to pre-backend behavior).
    #[default]
    Analytical,
    /// Kernels really execute on the host CPU via the shared client;
    /// measured wall-clock latency replaces the analytical timing in
    /// the DES clock.
    Cpu(Arc<CpuClient>),
}

impl ExecBackend {
    /// Stable label (`"analytical"` / `"cpu"`), used to tag telemetry
    /// exec spans.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ExecBackend::Analytical => "analytical",
            ExecBackend::Cpu(_) => "cpu",
        }
    }

    /// Whether this is the analytical (identity) backend.
    #[must_use]
    pub fn is_analytical(&self) -> bool {
        matches!(self, ExecBackend::Analytical)
    }

    /// The CPU client when the backend is measured.
    #[must_use]
    pub fn cpu(&self) -> Option<&Arc<CpuClient>> {
        match self {
            ExecBackend::Analytical => None,
            ExecBackend::Cpu(c) => Some(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(platform: PlatformKind) -> DeviceDescription {
        DeviceDescription {
            ordinal: 3,
            platform,
            name: "AMD FirePro W9100".to_string(),
            memory: MemoryDescription {
                bytes: 16 << 30,
                bandwidth_gbs: 320.0,
            },
            peak_power_w: 270.0,
            idle_power_w: 42.5,
            bitstream_slots: 0,
        }
    }

    #[test]
    fn summary_round_trips_every_platform() {
        for p in [
            PlatformKind::Accel(DeviceKind::Gpu),
            PlatformKind::Accel(DeviceKind::Fpga),
            PlatformKind::Cpu,
        ] {
            let d = desc(p);
            let parsed = DeviceDescription::parse_summary(&d.summary()).unwrap();
            assert_eq!(parsed, d, "platform {p}");
        }
    }

    #[test]
    fn summary_round_trips_awkward_floats() {
        let mut d = desc(PlatformKind::Cpu);
        d.memory.bandwidth_gbs = 25.599_999_999_999_994;
        d.peak_power_w = 1.0 / 3.0;
        let parsed = DeviceDescription::parse_summary(&d.summary()).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(DeviceDescription::parse_summary("").is_none());
        assert!(DeviceDescription::parse_summary("tpu ordinal=0").is_none());
        assert!(DeviceDescription::parse_summary("gpu ordinal=x mem_bytes=1").is_none());
    }

    #[test]
    fn platform_labels_round_trip() {
        for p in [
            PlatformKind::Accel(DeviceKind::Gpu),
            PlatformKind::Accel(DeviceKind::Fpga),
            PlatformKind::Cpu,
        ] {
            assert_eq!(PlatformKind::parse(p.label()), Some(p));
        }
        assert_eq!(PlatformKind::parse("tpu"), None);
    }

    #[test]
    fn backend_default_is_analytical() {
        let b = ExecBackend::default();
        assert!(b.is_analytical());
        assert_eq!(b.label(), "analytical");
        assert!(b.cpu().is_none());
    }
}
