//! The real CPU backend: kernels execute as representative micro-kernels
//! on a [`poly_par`] thread pool, with measured wall-clock latency and
//! derived energy.
//!
//! Determinism contract: the *numeric* result (checksum) of every
//! execution is bit-identical for any thread count (fixed chunking,
//! index-order combine — see [`crate::kernels`]). Wall-clock samples
//! vary between processes, but each client caches the first measurement
//! per kernel, so within one process every execution of a kernel
//! reports the same latency — simulations driven by a shared client are
//! reproducible run to run.

use crate::kernels::{MicroKernel, MicroRun};
use crate::{
    BackendError, Capabilities, Client, DeviceDescription, ExecReport, Executable, KernelWorkload,
    MemoryDescription, PlatformKind,
};
use poly_device::Estimate;
use poly_ir::KernelProfile;
use std::collections::HashMap;
use std::sync::Mutex;

/// Assumed package power at full load, in watts (server-class part).
pub const CPU_PEAK_POWER_W: f64 = 95.0;

/// Assumed package idle power, in watts.
pub const CPU_IDLE_POWER_W: f64 = 25.0;

/// Sustained throughput the *a-priori* host roofline assumes, in
/// Gflop/s. Deliberately crude — the calibration harness measures how
/// far real execution lands from it (and from the per-class measured
/// reference).
const ASSUMED_SUSTAINED_GFLOPS: f64 = 8.0;

/// Assumed host memory bandwidth in GB/s.
const ASSUMED_MEM_BANDWIDTH_GBS: f64 = 25.6;

/// Client that really executes kernel workloads on the host CPU.
#[derive(Debug)]
pub struct CpuClient {
    threads: usize,
    /// First measurement per kernel name; later executions of the same
    /// kernel reuse it, making in-process replays reproducible.
    cache: Mutex<HashMap<String, ExecReport>>,
}

impl CpuClient {
    /// Client running workloads on up to `threads` workers.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Worker threads the client executes with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute (or replay from the in-process cache) the micro-kernel
    /// for `name`/`profile` and return its report. This is the hot entry
    /// the runtime's policy re-timing uses.
    #[must_use]
    pub fn measure(&self, name: &str, profile: &KernelProfile) -> ExecReport {
        if let Some(hit) = self.cache.lock().expect("cpu cache").get(name) {
            return hit.clone();
        }
        let exe = CpuExecutable::new(name.to_string(), profile, self.threads);
        let report = exe.execute().expect("cpu execution is infallible");
        self.cache
            .lock()
            .expect("cpu cache")
            .insert(name.to_string(), report.clone());
        report
    }

    /// Drop all cached measurements (tests).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("cpu cache").clear();
    }

    fn description() -> DeviceDescription {
        DeviceDescription {
            ordinal: 0,
            platform: PlatformKind::Cpu,
            name: "host-cpu".to_string(),
            memory: MemoryDescription {
                bytes: 8 << 30,
                bandwidth_gbs: ASSUMED_MEM_BANDWIDTH_GBS,
            },
            peak_power_w: CPU_PEAK_POWER_W,
            idle_power_w: CPU_IDLE_POWER_W,
            bitstream_slots: 0,
        }
    }
}

impl Client for CpuClient {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            backend: "cpu",
            measured: true,
            devices: vec![Self::description()],
        }
    }

    fn compile(&self, workload: &KernelWorkload) -> Result<Box<dyn Executable>, BackendError> {
        Ok(Box::new(CpuExecutable::new(
            workload.name.clone(),
            &workload.profile,
            self.threads,
        )))
    }
}

/// One kernel bound to the host CPU as a sized micro-kernel.
#[derive(Debug, Clone)]
pub struct CpuExecutable {
    kernel: String,
    device: DeviceDescription,
    micro: MicroKernel,
    threads: usize,
}

impl CpuExecutable {
    fn new(kernel: String, profile: &KernelProfile, threads: usize) -> Self {
        Self {
            kernel,
            device: CpuClient::description(),
            micro: MicroKernel::for_profile(profile),
            threads,
        }
    }

    /// The sized micro-kernel this executable runs.
    #[must_use]
    pub fn micro(&self) -> &MicroKernel {
        &self.micro
    }

    /// Package power while `threads` workers execute: idle plus a
    /// utilization-proportional dynamic share.
    fn active_power_w(&self) -> f64 {
        let cores = std::thread::available_parallelism().map_or(8.0, |n| n.get() as f64);
        let util = (self.threads as f64 / cores).min(1.0);
        CPU_IDLE_POWER_W + (CPU_PEAK_POWER_W - CPU_IDLE_POWER_W) * util
    }

    /// The run's measured numbers folded into a report, with latency
    /// scaled up when the micro-kernel ran a capped share of the ops.
    fn report(&self, run: &MicroRun) -> ExecReport {
        let active_power_w = self.active_power_w();
        ExecReport {
            latency_ms: run.latency_ms,
            service_ms: run.latency_ms,
            batch: 1,
            active_power_w,
            idle_power_w: CPU_IDLE_POWER_W,
            energy_mj: active_power_w * run.latency_ms,
            measured: true,
            checksum: run.checksum,
            gflops: run.gflops,
        }
    }
}

impl Executable for CpuExecutable {
    fn kernel(&self) -> &str {
        &self.kernel
    }

    fn device(&self) -> &DeviceDescription {
        &self.device
    }

    fn estimate(&self) -> Estimate {
        // A-priori host roofline: compute at the assumed sustained rate
        // vs. streaming the working set once, whichever dominates.
        let t_compute = self.micro.total_ops / (ASSUMED_SUSTAINED_GFLOPS * 1e6);
        let bytes = self.micro.dim as f64 * 4.0 * 3.0;
        let t_mem = bytes * (self.micro.total_ops / self.micro.ops_per_run)
            / (ASSUMED_MEM_BANDWIDTH_GBS * 1e6);
        let latency_ms = t_compute.max(t_mem);
        Estimate {
            latency_ms,
            service_ms: latency_ms,
            batch: 1,
            active_power_w: self.active_power_w(),
            idle_power_w: CPU_IDLE_POWER_W,
            resources: None,
        }
    }

    fn execute(&self) -> Result<ExecReport, BackendError> {
        let run = self.micro.run(self.threads);
        Ok(self.report(&run))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_ir::{KernelBuilder, OpFunc, PatternKind, Shape};

    fn profile() -> KernelProfile {
        KernelBuilder::new("k")
            .pattern("m", PatternKind::Map, Shape::d2(256, 256), &[OpFunc::Mac])
            .iterations(50)
            .build()
            .unwrap()
            .profile()
    }

    #[test]
    fn execution_really_happens_and_is_cached() {
        let client = CpuClient::new(2);
        let p = profile();
        let first = client.measure("k", &p);
        assert!(first.measured);
        assert!(first.latency_ms > 0.0);
        assert!(first.gflops > 0.0);
        assert!(first.checksum.abs() > 0.0);
        assert!(first.energy_mj > 0.0);
        // Second call replays the cache: identical bits, including the
        // wall-clock sample.
        let second = client.measure("k", &p);
        assert_eq!(first, second);
        client.clear_cache();
        let third = client.measure("k", &p);
        // Fresh measurement: checksum identical (deterministic math),
        // latency a new sample.
        assert_eq!(first.checksum.to_bits(), third.checksum.to_bits());
    }

    #[test]
    fn checksums_are_identical_across_client_thread_counts() {
        let p = profile();
        let r1 = CpuClient::new(1).measure("k", &p);
        let r4 = CpuClient::new(4).measure("k", &p);
        assert_eq!(r1.checksum.to_bits(), r4.checksum.to_bits());
    }

    #[test]
    fn compile_then_execute_matches_the_trait_path() {
        let client = CpuClient::new(2);
        let workload = KernelWorkload {
            name: "k".into(),
            profile: profile(),
            tuning: None,
        };
        let exe = client.compile(&workload).unwrap();
        assert_eq!(exe.kernel(), "k");
        assert_eq!(exe.device().platform, PlatformKind::Cpu);
        let est = exe.estimate();
        assert!(est.latency_ms > 0.0);
        let report = exe.execute().unwrap();
        assert!(report.measured);
    }

    #[test]
    fn capabilities_expose_a_cpu_only_fleet() {
        let caps = CpuClient::new(2).capabilities();
        assert!(caps.measured);
        assert_eq!(caps.backend, "cpu");
        assert!(caps.supports(PlatformKind::Cpu));
        assert!(caps.accel_kinds().is_empty());
    }
}
