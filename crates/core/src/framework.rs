//! The top-level entry point: one type that owns the whole Poly pipeline
//! for an application on a provisioned node — offline design-space
//! exploration at construction, then plans, load-aware policies, and
//! simulators on demand.

use crate::{AppContext, NodeSetup, Optimizer, PolicyPrediction, PolyRuntime};
use poly_dse::{DesignSpaceCache, Explorer, KernelDesignSpace};
use poly_ir::KernelGraph;
use poly_sched::{ScheduleError, SchedulePlan, Scheduler};
use poly_sim::{Policy, Simulator};

/// The Poly framework for one application on one leaf node (Fig. 2):
/// construction runs the **offline kernel analysis** (design-space
/// exploration of every kernel on both platforms); the methods expose the
/// **runtime kernel scheduler** and the system optimizer.
///
/// ```rust
/// use poly_core::provision::{table_iii, Architecture, Setting};
/// use poly_core::Poly;
///
/// let app = poly_apps::asr();
/// let node = table_iii(Setting::I, Architecture::HeterPoly);
/// let mut poly = Poly::offline(app, node);
///
/// // One request, scheduled under the 200 ms bound (Fig. 6).
/// let plan = poly.plan(200.0).expect("schedulable");
/// assert!(plan.meets(200.0));
///
/// // A policy for serving 20 requests/second.
/// let (policy, prediction) = poly.policy_for_load(200.0, 20.0);
/// assert!(prediction.capacity_rps > 20.0);
/// assert_eq!(policy.len(), 4);
/// ```
#[derive(Debug)]
pub struct Poly {
    graph: KernelGraph,
    setup: NodeSetup,
    spaces: Vec<KernelDesignSpace>,
    optimizer: Optimizer,
    scheduler: Scheduler,
}

impl Poly {
    /// Run the offline phase: explore every kernel's design space on the
    /// node's GPU and FPGA models.
    #[must_use]
    pub fn offline(graph: KernelGraph, setup: NodeSetup) -> Self {
        let explorer = Explorer::new(setup.gpu.clone(), setup.fpga.clone());
        let spaces = DesignSpaceCache::global().explore_graph(&explorer, graph.kernels(), 1);
        Self {
            graph,
            setup,
            spaces,
            optimizer: Optimizer::new(),
            scheduler: Scheduler::default(),
        }
    }

    /// The application under management.
    #[must_use]
    pub fn graph(&self) -> &KernelGraph {
        &self.graph
    }

    /// The provisioned node.
    #[must_use]
    pub fn setup(&self) -> &NodeSetup {
        &self.setup
    }

    /// Per-kernel Pareto design spaces (offline-phase output), indexed by
    /// kernel id.
    #[must_use]
    pub fn design_spaces(&self) -> &[KernelDesignSpace] {
        &self.spaces
    }

    /// The two-step single-request schedule (Section V): latency
    /// optimization, then energy optimization within `bound_ms`.
    ///
    /// # Errors
    /// Returns [`ScheduleError`] if some kernel has no feasible
    /// implementation on the node's platforms.
    pub fn plan(&self, bound_ms: f64) -> Result<SchedulePlan, ScheduleError> {
        self.scheduler
            .plan(&self.graph, &self.spaces, &self.setup.pool, bound_ms)
    }

    /// The latency-only (Step 1) schedule.
    ///
    /// # Errors
    /// Same conditions as [`plan`](Self::plan).
    pub fn plan_latency(&self) -> Result<SchedulePlan, ScheduleError> {
        self.scheduler
            .plan_latency(&self.graph, &self.spaces, &self.setup.pool)
    }

    /// A load-aware execution policy for serving `rps` under `bound_ms`,
    /// with the model's prediction at that operating point.
    #[must_use]
    pub fn policy_for_load(&mut self, bound_ms: f64, rps: f64) -> (Policy, PolicyPrediction) {
        self.optimizer.plan_for_load(
            &self.graph,
            &self.spaces,
            &self.setup.pool,
            &self.setup.gpu,
            bound_ms,
            rps,
        )
    }

    /// The best *fixed* policy for maximum sustainable throughput — how
    /// the homogeneous baselines are provisioned.
    #[must_use]
    pub fn max_capacity_policy(&mut self, bound_ms: f64) -> Policy {
        self.optimizer.max_capacity_policy(
            &self.graph,
            &self.spaces,
            &self.setup.pool,
            &self.setup.gpu,
            bound_ms,
        )
    }

    /// Feed a measurement back into the system model (the Fig. 2 loop).
    pub fn observe(&mut self, predicted_p99_ms: f64, measured_p99_ms: f64) {
        self.optimizer
            .model_mut()
            .observe(predicted_p99_ms, measured_p99_ms);
    }

    /// A discrete-event simulator of this node executing `policy`.
    #[must_use]
    pub fn simulator(&self, policy: Policy) -> Simulator {
        Simulator::new(
            self.graph.clone(),
            &self.setup.pool,
            policy,
            self.setup.sim_config.clone(),
        )
    }

    /// Convert into the interval-driven trace runtime (Figs. 11–12).
    #[must_use]
    pub fn into_runtime(self, bound_ms: f64) -> PolyRuntime {
        PolyRuntime::new(AppContext::new(
            self.graph,
            self.spaces,
            self.setup,
            bound_ms,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provision::{table_iii, Architecture, Setting};

    fn poly() -> Poly {
        Poly::offline(
            poly_apps::asr(),
            table_iii(Setting::I, Architecture::HeterPoly),
        )
    }

    #[test]
    fn offline_phase_explores_every_kernel() {
        let p = poly();
        assert_eq!(p.design_spaces().len(), p.graph().len());
        assert!(p.design_spaces().iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn plan_and_policy_are_consistent() {
        let mut p = poly();
        let plan = p.plan(200.0).expect("schedulable");
        assert!(plan.meets(200.0));
        let (policy, pred) = p.policy_for_load(200.0, 10.0);
        assert_eq!(policy.len(), p.graph().len());
        assert!(pred.capacity_rps > 10.0);
    }

    #[test]
    fn simulator_runs_the_policy() {
        let mut p = poly();
        let (policy, _) = p.policy_for_load(200.0, 5.0);
        let mut sim = p.simulator(policy);
        sim.enqueue_arrivals(&[0.0, 100.0, 200.0]);
        sim.drain();
        let report = sim.finish(60_000.0);
        assert_eq!(report.completed, 3);
    }

    #[test]
    fn observe_updates_the_model() {
        let mut p = poly();
        let before = p.optimizer.model().correction();
        p.observe(100.0, 180.0);
        assert!(p.optimizer.model().correction() > before);
    }

    #[test]
    fn into_runtime_preserves_the_setup() {
        let p = poly();
        let _rt = p.into_runtime(200.0);
    }
}
