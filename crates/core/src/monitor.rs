//! The system monitor (the "Monitor" box of Fig. 2): per-interval
//! observations of load, latency, and power, with a smoothed load
//! estimate for the optimizer.

use std::collections::VecDeque;

/// One re-planning interval's observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalObs {
    /// Interval length in milliseconds.
    pub duration_ms: f64,
    /// Requests that arrived during the interval.
    pub arrived: usize,
    /// Requests that completed during the interval.
    pub completed: usize,
    /// Measured p99 latency (0 when nothing completed).
    pub p99_ms: f64,
    /// Mean node power over the interval, in watts.
    pub avg_power_w: f64,
    /// Work items queued at interval end (burst signal).
    pub queued: usize,
}

impl IntervalObs {
    /// Offered load of the interval in RPS.
    #[must_use]
    pub fn arrival_rps(&self) -> f64 {
        if self.duration_ms <= 0.0 {
            0.0
        } else {
            self.arrived as f64 * 1000.0 / self.duration_ms
        }
    }
}

/// Sliding-window monitor with exponentially weighted load smoothing.
///
/// The queue-length signal makes the estimate react to bursts
/// *immediately* rather than one interval late: "a sudden change in load
/// makes Heter-Poly immediately shift to higher performance mode"
/// (Section VI-C).
#[derive(Debug, Clone)]
pub struct SystemMonitor {
    window: VecDeque<IntervalObs>,
    capacity: usize,
    /// EWMA of the offered load; `None` until the first observation, so
    /// the estimate is *seeded* from what is actually measured instead of
    /// cold-starting biased toward zero (which would make the first
    /// re-plan under-provision).
    smoothed_rps: Option<f64>,
}

impl SystemMonitor {
    /// Monitor keeping the last `window` intervals.
    #[must_use]
    pub fn new(window: usize) -> Self {
        Self {
            window: VecDeque::with_capacity(window.max(1)),
            capacity: window.max(1),
            smoothed_rps: None,
        }
    }

    /// Record one interval.
    pub fn observe(&mut self, obs: IntervalObs) {
        self.smoothed_rps = Some(match self.smoothed_rps {
            None => obs.arrival_rps(),
            Some(prev) => 0.5 * prev + 0.5 * obs.arrival_rps(),
        });
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(obs);
    }

    /// Forget all observations and the smoothed estimate — called when the
    /// workload context changes (a new trace replay), so the next
    /// observation re-seeds the EWMA instead of blending with stale state.
    pub fn reset(&mut self) {
        self.window.clear();
        self.smoothed_rps = None;
    }

    /// Smoothed load estimate in RPS, inflated by the backlog: queued work
    /// is load that must be served *now*.
    #[must_use]
    pub fn load_estimate_rps(&self) -> f64 {
        let backlog_boost = self
            .window
            .back()
            .map_or(0.0, |o| o.queued as f64 * 1000.0 / o.duration_ms.max(1.0));
        self.smoothed_rps.unwrap_or(0.0) + backlog_boost
    }

    /// Most recent measured p99, if any interval completed work.
    #[must_use]
    pub fn last_p99_ms(&self) -> Option<f64> {
        self.window
            .iter()
            .rev()
            .find(|o| o.completed > 0)
            .map(|o| o.p99_ms)
    }

    /// Mean power over the window, in watts.
    #[must_use]
    pub fn mean_power_w(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let (e, t) = self.window.iter().fold((0.0, 0.0), |(e, t), o| {
            (e + o.avg_power_w * o.duration_ms, t + o.duration_ms)
        });
        if t > 0.0 {
            e / t
        } else {
            0.0
        }
    }

    /// Observations currently in the window, oldest first.
    #[must_use]
    pub fn window(&self) -> &VecDeque<IntervalObs> {
        &self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(arrived: usize, queued: usize) -> IntervalObs {
        IntervalObs {
            duration_ms: 1000.0,
            arrived,
            completed: arrived,
            p99_ms: 100.0,
            avg_power_w: 50.0,
            queued,
        }
    }

    #[test]
    fn smoothing_tracks_load_changes() {
        let mut m = SystemMonitor::new(8);
        m.observe(obs(10, 0));
        assert!((m.load_estimate_rps() - 10.0).abs() < 1e-9);
        m.observe(obs(30, 0));
        let est = m.load_estimate_rps();
        assert!(est > 10.0 && est < 30.0);
    }

    #[test]
    fn backlog_boosts_estimate_immediately() {
        let mut m = SystemMonitor::new(8);
        m.observe(obs(10, 0));
        let calm = m.load_estimate_rps();
        m.observe(obs(10, 25));
        assert!(m.load_estimate_rps() > calm + 20.0);
    }

    #[test]
    fn first_observation_seeds_estimate() {
        // The very first interval must not be averaged with a zero prior.
        let mut m = SystemMonitor::new(8);
        m.observe(obs(100, 0));
        assert!((m.load_estimate_rps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn reset_reseeds_from_next_observation() {
        let mut m = SystemMonitor::new(8);
        m.observe(obs(100, 0));
        m.observe(obs(100, 0));
        m.reset();
        assert!(m.window().is_empty());
        assert_eq!(m.load_estimate_rps(), 0.0);
        // Post-reset, the next observation seeds afresh: no blend with the
        // pre-reset 100 RPS history.
        m.observe(obs(10, 0));
        assert!((m.load_estimate_rps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_every_derived_signal() {
        // Regression guard for the Option-based EWMA cold-start fix: after
        // reset() the monitor must behave exactly like a freshly
        // constructed one — no stale backlog boost, p99, or power blending
        // into the next replay's signals.
        let mut m = SystemMonitor::new(4);
        m.observe(obs(50, 40)); // backlog-inflated interval
        assert!(m.load_estimate_rps() > 50.0);
        assert_eq!(m.last_p99_ms(), Some(100.0));
        assert!(m.mean_power_w() > 0.0);
        m.reset();
        assert_eq!(m.load_estimate_rps(), 0.0, "no backlog boost survives");
        assert_eq!(m.last_p99_ms(), None);
        assert_eq!(m.mean_power_w(), 0.0);
        // The re-seed is Option-driven, not a zero prior: a fresh monitor
        // and a reset one produce identical estimates for the same input.
        let mut fresh = SystemMonitor::new(4);
        fresh.observe(obs(7, 0));
        m.observe(obs(7, 0));
        assert_eq!(m.load_estimate_rps(), fresh.load_estimate_rps());
        assert!((m.load_estimate_rps() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn window_is_bounded() {
        let mut m = SystemMonitor::new(3);
        for i in 0..10 {
            m.observe(obs(i, 0));
        }
        assert_eq!(m.window().len(), 3);
    }

    #[test]
    fn last_p99_skips_empty_intervals() {
        let mut m = SystemMonitor::new(4);
        m.observe(obs(5, 0));
        m.observe(IntervalObs {
            completed: 0,
            p99_ms: 0.0,
            ..obs(0, 0)
        });
        assert_eq!(m.last_p99_ms(), Some(100.0));
    }

    #[test]
    fn mean_power_weighted_by_duration() {
        let mut m = SystemMonitor::new(4);
        m.observe(IntervalObs {
            avg_power_w: 100.0,
            duration_ms: 1000.0,
            ..obs(1, 0)
        });
        m.observe(IntervalObs {
            avg_power_w: 200.0,
            duration_ms: 3000.0,
            ..obs(1, 0)
        });
        assert!((m.mean_power_w() - 175.0).abs() < 1e-9);
    }
}
