//! Total-cost-of-ownership model behind the cost-efficiency analysis of
//! Fig. 14, in the style of Google's datacenter cost model \[57\] with the
//! Sirius parameter roles \[4\]: amortized server + accelerator capex,
//! datacenter capex per provisioned watt, and power opex (utility price ×
//! PUE).

use crate::NodeSetup;

/// TCO model parameters (USD, months, watts).
#[derive(Debug, Clone, PartialEq)]
pub struct TcoParams {
    /// Host server price (chassis, CPU, DRAM) in USD.
    pub server_capex_usd: f64,
    /// Amortization horizon for server + accelerators, in months.
    pub server_amortization_months: f64,
    /// Datacenter infrastructure capex per provisioned watt, in USD/W.
    pub datacenter_capex_usd_per_w: f64,
    /// Datacenter amortization horizon, in months.
    pub datacenter_amortization_months: f64,
    /// Electricity price in USD per kWh.
    pub electricity_usd_per_kwh: f64,
    /// Power usage effectiveness (facility overhead multiplier).
    pub pue: f64,
    /// Monthly maintenance as a fraction of amortized server capex.
    pub maintenance_fraction: f64,
}

impl Default for TcoParams {
    /// Parameter values in the range used by the Google model \[57\] /
    /// Sirius \[4\]: $4k two-socket host amortized over 3 years, $10/W
    /// facility over 12 years, $0.067/kWh utility power at PUE 1.1, 5%
    /// maintenance.
    fn default() -> Self {
        Self {
            server_capex_usd: 4_000.0,
            server_amortization_months: 36.0,
            datacenter_capex_usd_per_w: 10.0,
            datacenter_amortization_months: 144.0,
            electricity_usd_per_kwh: 0.067,
            pue: 1.1,
            maintenance_fraction: 0.05,
        }
    }
}

/// Monthly TCO of one provisioned leaf node drawing `avg_power_w` on
/// average.
#[must_use]
pub fn monthly_tco_usd(setup: &NodeSetup, avg_power_w: f64, params: &TcoParams) -> f64 {
    let accel_capex = setup.gpus() as f64 * setup.gpu.spec().price_usd
        + setup.fpgas() as f64 * setup.fpga.spec().price_usd;
    let server = (params.server_capex_usd + accel_capex) / params.server_amortization_months;
    let dc = params.datacenter_capex_usd_per_w * setup.power_cap_w
        / params.datacenter_amortization_months;
    let hours_per_month = 730.0;
    let energy =
        avg_power_w / 1000.0 * hours_per_month * params.electricity_usd_per_kwh * params.pue;
    let maintenance = server * params.maintenance_fraction;
    server + dc + energy + maintenance
}

/// Cost efficiency as defined in Section VI-E: maximum sustainable
/// throughput divided by TCO (requests per second per monthly dollar).
#[must_use]
pub fn cost_efficiency(max_rps: f64, monthly_tco_usd: f64) -> f64 {
    if monthly_tco_usd <= 0.0 {
        0.0
    } else {
        max_rps / monthly_tco_usd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provision::{table_iii, Architecture, Setting};

    #[test]
    fn tco_includes_all_components() {
        let node = table_iii(Setting::I, Architecture::HeterPoly);
        let params = TcoParams::default();
        let idle = monthly_tco_usd(&node, 0.0, &params);
        let loaded = monthly_tco_usd(&node, 400.0, &params);
        assert!(idle > 0.0);
        assert!(loaded > idle, "energy opex must matter");
        // Energy delta: 400 W × 730 h × $0.067/kWh × 1.1 ≈ $21.5/month.
        assert!((loaded - idle - 0.4 * 730.0 * 0.067 * 1.1).abs() < 1e-9);
    }

    #[test]
    fn accelerator_prices_enter_capex() {
        let gpu_node = table_iii(Setting::I, Architecture::HomoGpu); // 2 × $4999
        let fpga_node = table_iii(Setting::I, Architecture::HomoFpga); // 10 × $3200
        let params = TcoParams::default();
        let g = monthly_tco_usd(&gpu_node, 300.0, &params);
        let f = monthly_tco_usd(&fpga_node, 300.0, &params);
        // 10 FPGAs cost more capex than 2 GPUs here.
        assert!(f > g);
    }

    #[test]
    fn efficiency_monotone_in_throughput() {
        assert!(cost_efficiency(100.0, 500.0) > cost_efficiency(50.0, 500.0));
        assert_eq!(cost_efficiency(100.0, 0.0), 0.0);
    }

    #[test]
    fn lower_power_lowers_tco() {
        let node = table_iii(Setting::I, Architecture::HeterPoly);
        let params = TcoParams::default();
        assert!(monthly_tco_usd(&node, 150.0, &params) < monthly_tco_usd(&node, 450.0, &params));
    }
}
