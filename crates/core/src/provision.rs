//! Leaf-node architecture assembly under a power cap (Table III).

use poly_backend::{accel_pool, AnalyticalClient, ExecBackend};
use poly_device::{catalog, FpgaModel, GpuModel, PcieLink};
use poly_sched::Pool;
use poly_sim::SimConfig;

/// The three leaf-node architectures the paper compares (Section II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Architecture {
    /// GPUs only, Sirius-style static mapping.
    HomoGpu,
    /// FPGAs only, Sirius-style static mapping.
    HomoFpga,
    /// Both platforms, scheduled by Poly (power split 50%–50% per
    /// Table III, or custom for the scalability sweep of Fig. 13).
    HeterPoly,
}

impl Architecture {
    /// Display name as used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Architecture::HomoGpu => "Homo-GPU",
            Architecture::HomoFpga => "Homo-FPGA",
            Architecture::HeterPoly => "Heter-Poly",
        }
    }
}

/// The three hardware settings of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// AMD W9100 + Xilinx 7V3.
    I,
    /// NVIDIA K20 + Xilinx ZCU102.
    II,
    /// NVIDIA K20 + Intel Arria 10.
    III,
}

impl Setting {
    /// The GPU of this setting (Table IV).
    #[must_use]
    pub fn gpu(self) -> GpuModel {
        match self {
            Setting::I => catalog::amd_w9100(),
            Setting::II | Setting::III => catalog::nvidia_k20(),
        }
    }

    /// The FPGA of this setting (Table V).
    #[must_use]
    pub fn fpga(self) -> FpgaModel {
        match self {
            Setting::I => catalog::xilinx_7v3(),
            Setting::II => catalog::xilinx_zcu102(),
            Setting::III => catalog::intel_arria10(),
        }
    }

    /// All three settings.
    pub const ALL: [Setting; 3] = [Setting::I, Setting::II, Setting::III];

    /// Setting number as printed in Table III.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Setting::I => "Setting-I",
            Setting::II => "Setting-II",
            Setting::III => "Setting-III",
        }
    }
}

/// A fully assembled leaf node: device pool, device models, and the
/// simulation parameters derived from them.
#[derive(Debug, Clone)]
pub struct NodeSetup {
    /// Architecture label.
    pub architecture: Architecture,
    /// Hardware setting.
    pub setting: Setting,
    /// The accelerator pool.
    pub pool: Pool,
    /// GPU model of the setting.
    pub gpu: GpuModel,
    /// FPGA model of the setting.
    pub fpga: FpgaModel,
    /// Simulator configuration (idle powers, reconfiguration time, PCIe).
    pub sim_config: SimConfig,
    /// The power cap the node was provisioned under, in watts.
    pub power_cap_w: f64,
    /// Execution backend the node runs kernels on (default analytical —
    /// the bit-identical modeled path). Cluster nodes each carry their
    /// own, so a fleet can mix modeled and measured nodes.
    pub backend: ExecBackend,
}

impl NodeSetup {
    /// Number of GPUs in the pool.
    #[must_use]
    pub fn gpus(&self) -> usize {
        self.pool.count(poly_device::DeviceKind::Gpu)
    }

    /// Number of FPGAs in the pool.
    #[must_use]
    pub fn fpgas(&self) -> usize {
        self.pool.count(poly_device::DeviceKind::Fpga)
    }

    /// Worst-case accelerator power of the node: every device at its board
    /// peak. Table III's Homo-GPU rows nominally exceed the 500 W cap
    /// (2 × 270 W), exactly as in the paper.
    #[must_use]
    pub fn provisioned_power_w(&self) -> f64 {
        self.gpus() as f64 * self.gpu.spec().peak_power_w
            + self.fpgas() as f64 * self.fpga.spec().peak_power_w
    }
}

fn sim_config(gpu: &GpuModel, fpga: &FpgaModel) -> SimConfig {
    SimConfig {
        pcie: PcieLink::gen3_x16(),
        latency_bound_ms: 200.0,
        gpu_idle_w: gpu.spec().idle_power_w,
        fpga_idle_w: fpga.spec().static_power_w,
        fpga_reconfig_ms: fpga.spec().reconfig_ms,
        lifecycle: poly_sim::LifecycleConfig::default(),
        dynamic: None,
        backend_label: ExecBackend::Analytical.label(),
        pipeline: poly_sim::PipelineConfig::default(),
    }
}

/// Capability-driven pool construction: ask the analytical client what
/// devices a node of `gpus` + `fpgas` carries and build the pool from
/// the advertisement — byte-identical to the former hand-built
/// `Pool::heterogeneous(gpus, fpgas)` literal, but derived from the
/// backend's [`Capabilities`](poly_backend::Capabilities) rather than
/// asserted.
fn provisioned_pool(gpu: &GpuModel, fpga: &FpgaModel, gpus: usize, fpgas: usize) -> Pool {
    accel_pool(&AnalyticalClient::new(
        gpu.clone(),
        fpga.clone(),
        gpus,
        fpgas,
    ))
}

/// Assemble the node of Table III for `(setting, architecture)` under the
/// paper's 500 W leaf-node cap, using the table's exact device counts.
#[must_use]
pub fn table_iii(setting: Setting, architecture: Architecture) -> NodeSetup {
    let (gpus, fpgas) = match (setting, architecture) {
        (Setting::I, Architecture::HomoGpu) => (2, 0),
        (Setting::I, Architecture::HomoFpga) => (0, 10),
        (Setting::I, Architecture::HeterPoly) => (1, 5),
        (Setting::II, Architecture::HomoGpu) => (2, 0),
        (Setting::II, Architecture::HomoFpga) => (0, 16),
        (Setting::II, Architecture::HeterPoly) => (1, 8),
        (Setting::III, Architecture::HomoGpu) => (2, 0),
        (Setting::III, Architecture::HomoFpga) => (0, 8),
        (Setting::III, Architecture::HeterPoly) => (1, 4),
    };
    let gpu = setting.gpu();
    let fpga = setting.fpga();
    let sim_config = sim_config(&gpu, &fpga);
    let pool = provisioned_pool(&gpu, &fpga, gpus, fpgas);
    NodeSetup {
        architecture,
        setting,
        pool,
        gpu,
        fpga,
        sim_config,
        power_cap_w: 500.0,
        backend: ExecBackend::Analytical,
    }
}

/// Provision a node by formula for the architecture-scalability sweep of
/// Fig. 13: split `power_cap_w` between the platforms at `gpu_share`
/// (`0.0` = Homo-FPGA, `1.0` = Homo-GPU) and fit as many devices as the
/// per-platform budget allows (nearest integer, at least one device in any
/// non-zero share).
///
/// # Panics
/// Panics if `gpu_share` is outside `\[0, 1\]` or the cap is non-positive.
#[must_use]
pub fn power_split(setting: Setting, power_cap_w: f64, gpu_share: f64) -> NodeSetup {
    assert!((0.0..=1.0).contains(&gpu_share), "share must be in [0,1]");
    assert!(power_cap_w > 0.0, "cap must be positive");
    let gpu = setting.gpu();
    let fpga = setting.fpga();
    let gpu_budget = power_cap_w * gpu_share;
    let fpga_budget = power_cap_w * (1.0 - gpu_share);
    let gpus = if gpu_share == 0.0 {
        0
    } else {
        ((gpu_budget / gpu.spec().peak_power_w).round() as usize).max(1)
    };
    let fpgas = if gpu_share == 1.0 {
        0
    } else {
        ((fpga_budget / fpga.spec().peak_power_w).round() as usize).max(1)
    };
    let architecture = if gpus == 0 {
        Architecture::HomoFpga
    } else if fpgas == 0 {
        Architecture::HomoGpu
    } else {
        Architecture::HeterPoly
    };
    let sim_config = sim_config(&gpu, &fpga);
    let pool = provisioned_pool(&gpu, &fpga, gpus, fpgas);
    NodeSetup {
        architecture,
        setting,
        pool,
        gpu,
        fpga,
        sim_config,
        power_cap_w,
        backend: ExecBackend::Analytical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_counts_match_paper() {
        let s1 = table_iii(Setting::I, Architecture::HeterPoly);
        assert_eq!((s1.gpus(), s1.fpgas()), (1, 5));
        let s2 = table_iii(Setting::II, Architecture::HomoFpga);
        assert_eq!((s2.gpus(), s2.fpgas()), (0, 16));
        let s3 = table_iii(Setting::III, Architecture::HeterPoly);
        assert_eq!((s3.gpus(), s3.fpgas()), (1, 4));
    }

    #[test]
    fn sim_config_follows_device_specs() {
        let n = table_iii(Setting::I, Architecture::HeterPoly);
        assert_eq!(n.sim_config.gpu_idle_w, n.gpu.spec().idle_power_w);
        assert_eq!(n.sim_config.fpga_idle_w, n.fpga.spec().static_power_w);
        assert_eq!(n.sim_config.fpga_reconfig_ms, n.fpga.spec().reconfig_ms);
    }

    #[test]
    fn provisioned_power_tracks_device_counts() {
        let het = table_iii(Setting::I, Architecture::HeterPoly);
        assert!((het.provisioned_power_w() - (270.0 + 5.0 * 45.0)).abs() < 1e-9);
        // The paper's own Homo-GPU rows nominally exceed the cap.
        let gpu = table_iii(Setting::I, Architecture::HomoGpu);
        assert!(gpu.provisioned_power_w() > gpu.power_cap_w);
    }

    #[test]
    fn power_split_endpoints_are_homogeneous() {
        let g = power_split(Setting::I, 1000.0, 1.0);
        assert_eq!(g.architecture, Architecture::HomoGpu);
        assert_eq!(g.fpgas(), 0);
        let f = power_split(Setting::I, 1000.0, 0.0);
        assert_eq!(f.architecture, Architecture::HomoFpga);
        assert_eq!(f.gpus(), 0);
    }

    #[test]
    fn fig13_example_point() {
        // Paper: "when the power split between GPUs and FPGAs is 80%-20%,
        // the Setting-I contains three GPUs and four FPGAs" (1000 W cap).
        let n = power_split(Setting::I, 1000.0, 0.8);
        assert_eq!((n.gpus(), n.fpgas()), (3, 4));
    }

    #[test]
    #[should_panic(expected = "share")]
    fn bad_share_panics() {
        let _ = power_split(Setting::I, 500.0, 1.5);
    }

    #[test]
    fn capability_driven_pool_matches_the_legacy_literal() {
        // The pool is now derived from the analytical client's device
        // advertisement; it must stay exactly the hand-built layout.
        for setting in Setting::ALL {
            for arch in [
                Architecture::HomoGpu,
                Architecture::HomoFpga,
                Architecture::HeterPoly,
            ] {
                let n = table_iii(setting, arch);
                assert_eq!(n.pool, Pool::heterogeneous(n.gpus(), n.fpgas()));
                assert!(n.backend.is_analytical());
                assert_eq!(n.sim_config.backend_label, "analytical");
            }
        }
        let split = power_split(Setting::II, 1000.0, 0.5);
        assert_eq!(split.pool, Pool::heterogeneous(split.gpus(), split.fpgas()));
    }
}
