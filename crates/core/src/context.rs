//! [`AppContext`]: the application-on-a-node bundle — kernel graph,
//! explored design spaces, node provisioning, and QoS bound — that every
//! runtime entry point used to take as a positional quadruple.
//!
//! `PolyRuntime::new` and `ClusterNode::new` both consume one; cluster
//! fan-out shares the (immutable) graph and design spaces across nodes
//! through `Arc` instead of deep-cloning them per node.

use std::sync::Arc;

use crate::NodeSetup;
use poly_dse::KernelDesignSpace;
use poly_ir::KernelGraph;

/// One application bound to one provisioned node under a QoS bound.
///
/// The graph and design spaces are reference-counted: [`Clone`] and
/// [`AppContext::with_setup`] are cheap, so a cluster builds N per-node
/// contexts from one exploration without copying the spaces N times.
#[derive(Debug, Clone)]
pub struct AppContext {
    graph: Arc<KernelGraph>,
    spaces: Arc<Vec<KernelDesignSpace>>,
    setup: NodeSetup,
    bound_ms: f64,
    tenant: &'static str,
    qos_weight: f64,
}

impl AppContext {
    /// Bundle `graph` with its explored `spaces` on `setup` under
    /// `bound_ms` (p99 QoS bound, milliseconds).
    #[must_use]
    pub fn new(
        graph: KernelGraph,
        spaces: Vec<KernelDesignSpace>,
        setup: NodeSetup,
        bound_ms: f64,
    ) -> Self {
        Self {
            graph: Arc::new(graph),
            spaces: Arc::new(spaces),
            setup,
            bound_ms,
            tenant: "default",
            qos_weight: 1.0,
        }
    }

    /// Tag this context as QoS class `tenant` with admission/power weight
    /// `weight` (relative to its co-tenants; 1.0 is the single-tenant
    /// default). Multi-tenant cluster nodes use the weight both in the
    /// router's per-class admission and in the per-node power split.
    ///
    /// # Panics
    /// Panics if `weight` is not finite and positive.
    #[must_use]
    pub fn with_tenant(mut self, tenant: &'static str, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "tenant weight must be finite and positive"
        );
        self.tenant = tenant;
        self.qos_weight = weight;
        self
    }

    /// The tenant / QoS-class label (`"default"` unless tagged).
    #[must_use]
    pub fn tenant(&self) -> &'static str {
        self.tenant
    }

    /// The tenant's QoS weight (1.0 unless tagged).
    #[must_use]
    pub fn qos_weight(&self) -> f64 {
        self.qos_weight
    }

    /// The application's kernel graph.
    #[must_use]
    pub fn graph(&self) -> &KernelGraph {
        &self.graph
    }

    /// An owned copy of the graph (the simulator takes it by value).
    #[must_use]
    pub fn graph_owned(&self) -> KernelGraph {
        (*self.graph).clone()
    }

    /// The explored per-kernel design spaces.
    #[must_use]
    pub fn spaces(&self) -> &[KernelDesignSpace] {
        &self.spaces
    }

    /// The node's provisioning (pool, device models, sim parameters).
    #[must_use]
    pub fn setup(&self) -> &NodeSetup {
        &self.setup
    }

    /// Mutable access to the provisioning (e.g. a cluster overriding the
    /// per-node lifecycle config before construction).
    pub fn setup_mut(&mut self) -> &mut NodeSetup {
        &mut self.setup
    }

    /// The p99 QoS bound, milliseconds.
    #[must_use]
    pub fn bound_ms(&self) -> f64 {
        self.bound_ms
    }

    /// A sibling context on a different node `setup`, sharing this
    /// context's graph and design spaces (cluster fan-out).
    #[must_use]
    pub fn with_setup(&self, setup: NodeSetup) -> Self {
        Self {
            graph: Arc::clone(&self.graph),
            spaces: Arc::clone(&self.spaces),
            setup,
            bound_ms: self.bound_ms,
            tenant: self.tenant,
            qos_weight: self.qos_weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provision::{table_iii, Architecture, Setting};
    use poly_dse::Explorer;

    #[test]
    fn with_setup_shares_graph_and_spaces() {
        let app = poly_apps::asr();
        let setup = table_iii(Setting::I, Architecture::HeterPoly);
        let ex = Explorer::new(setup.gpu.clone(), setup.fpga.clone());
        let spaces: Vec<_> = app.kernels().iter().map(|k| ex.explore(k)).collect();
        let ctx = AppContext::new(app, spaces, setup.clone(), 200.0);
        let sibling = ctx.with_setup(setup.clone());
        assert!(Arc::ptr_eq(&ctx.graph, &sibling.graph));
        assert!(Arc::ptr_eq(&ctx.spaces, &sibling.spaces));
        assert_eq!(sibling.bound_ms(), 200.0);
        // Untagged contexts are the single-tenant default.
        assert_eq!(ctx.tenant(), "default");
        assert_eq!(ctx.qos_weight(), 1.0);
        // Tenant tags survive node fan-out.
        let tagged = ctx.with_tenant("interactive", 3.0).with_setup(setup);
        assert_eq!(tagged.tenant(), "interactive");
        assert_eq!(tagged.qos_weight(), 3.0);
    }
}
