//! The interval-driven runtime loop: monitor → model → optimizer →
//! simulator, re-planning every interval over a utilization trace — the
//! machinery behind the 24-hour trace evaluation (Figs. 11–12) and the
//! QoS-violation / prediction-error analysis of Section VI-C.
//!
//! A run is described by a [`RunSpec`] (workload, mode, seed, faults,
//! lifecycle override, telemetry recorder) and executed by
//! [`PolyRuntime::run`].

use crate::{AppContext, IntervalObs, Optimizer, SystemMonitor};
use poly_backend::ExecBackend;
use poly_ir::{KernelGraph, KernelId};
use poly_obs::{Event as ObsEvent, Recorder};
use poly_sim::workload::{poisson, SizeDist, TracePoint};
use poly_sim::{
    quantile_of, violations_of, DynamicDispatch, FaultPlan, KernelImpl, LifecycleConfig, Policy,
    RetryStats, Simulator,
};

/// Alternates the dispatch-time chooser keeps per kernel when the
/// dynamic layer is enabled (primary + up to three fallbacks — enough
/// to retain both the min-latency and the most-efficient implementation
/// of each platform).
const DYNAMIC_TOP_K: usize = 4;

/// How the runtime selects policies.
#[derive(Debug, Clone)]
pub enum RuntimeMode {
    /// Poly: re-plan every interval from monitor feedback.
    Poly,
    /// Static baseline: one fixed policy for the whole trace.
    Static(Policy),
}

/// One interval of a trace run.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    /// Interval start in milliseconds since trace begin.
    pub start_ms: f64,
    /// Trace utilization level for the interval.
    pub utilization: f64,
    /// Offered load in RPS.
    pub offered_rps: f64,
    /// Measured p99 latency over the interval (0 if nothing completed —
    /// `completed == 0` distinguishes that from a true zero).
    pub p99_ms: f64,
    /// Model-predicted p99 for the adopted policy (Poly mode only).
    pub predicted_p99_ms: f64,
    /// Mean node power over the interval, in watts.
    pub avg_power_w: f64,
    /// Whether the adopted policy differs from the previous interval's.
    pub policy_changed: bool,
    /// Requests completing over the bound during the interval.
    pub violations: usize,
    /// Requests completed during the interval.
    pub completed: usize,
    /// Healthy devices at the end of the interval.
    pub healthy_devices: usize,
    /// Fault events (fail-stop / slowdown / recovery) applied during the
    /// interval.
    pub fault_events: usize,
    /// Work items retried onto surviving devices during the interval.
    pub retried: usize,
}

/// Aggregate results of a trace run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Per-interval records.
    pub intervals: Vec<IntervalRecord>,
    /// Total energy over the trace, in joules.
    pub energy_j: f64,
    /// Mean node power over the trace, in watts.
    pub mean_power_w: f64,
    /// Overall QoS violation ratio (violations / completed).
    pub violation_ratio: f64,
    /// Mean absolute relative error of the model's p99 predictions against
    /// measurements (Poly mode; the paper reports < 6%).
    pub prediction_error: f64,
    /// Total fault events applied over the trace.
    pub fault_events: usize,
    /// Unified re-issue ledger over the trace: fail-stop retries, bounded
    /// retry exhaustion, and hedging (`redistributed` stays 0 at node
    /// level).
    pub retry: RetryStats,
    /// Requests abandoned past their deadline over the trace (0 unless
    /// the node's lifecycle config sets deadlines).
    pub timed_out: usize,
    /// Mean time from a fail-stop to the first subsequent interval whose
    /// measured p99 is back under the bound, in milliseconds (0 when no
    /// fail-stop was injected or service never recovered).
    pub mean_recovery_ms: f64,
}

/// Everything that defines one trace run: the workload (trace, interval,
/// load scaling), the planning mode, the arrival seed, an optional fault
/// plan, an optional per-run lifecycle override, and an optional
/// telemetry recorder.
///
/// Build with [`RunSpec::new`] plus the chained setters; unset options
/// default to fault-free, the node's configured lifecycle, and no
/// recording — which reproduces the legacy `run_trace` behavior exactly.
#[derive(Debug, Clone)]
pub struct RunSpec {
    trace: Vec<TracePoint>,
    interval_ms: f64,
    max_rps: f64,
    mode: RuntimeMode,
    seed: u64,
    faults: FaultPlan,
    lifecycle: Option<LifecycleConfig>,
    recorder: Option<Box<dyn Recorder>>,
    sizes: SizeDist,
    dynamic: Option<DynamicDispatch>,
    backend: Option<ExecBackend>,
}

impl RunSpec {
    /// A run replaying `trace` with `interval_ms` sampling / re-planning
    /// period at `max_rps` load scaling. Defaults: [`RuntimeMode::Poly`],
    /// seed 0, no faults, configured lifecycle, no recorder.
    #[must_use]
    pub fn new(trace: &[TracePoint], interval_ms: f64, max_rps: f64) -> Self {
        Self {
            trace: trace.to_vec(),
            interval_ms,
            max_rps,
            mode: RuntimeMode::Poly,
            seed: 0,
            faults: FaultPlan::new(),
            lifecycle: None,
            recorder: None,
            sizes: SizeDist::Nominal,
            dynamic: None,
            backend: None,
        }
    }

    /// Planning mode ([`RuntimeMode::Poly`] or a static baseline).
    #[must_use]
    pub fn mode(mut self, mode: RuntimeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Seed for the Poisson arrival process.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scripted device fault plan.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Override the node's request-lifecycle config for this run.
    #[must_use]
    pub fn lifecycle(mut self, lifecycle: LifecycleConfig) -> Self {
        self.lifecycle = Some(lifecycle);
        self
    }

    /// Attach a telemetry recorder (e.g. a `MemRecorder` handle; keep a
    /// clone to read the samples back after the run).
    #[must_use]
    pub fn recorder(mut self, recorder: impl Recorder + 'static) -> Self {
        self.recorder = Some(Box::new(recorder));
        self
    }

    /// Per-request input-size distribution (default
    /// [`SizeDist::Nominal`], i.e. every request exactly nominal — the
    /// legacy behavior, bit for bit).
    #[must_use]
    pub fn sizes(mut self, sizes: SizeDist) -> Self {
        self.sizes = sizes;
        self
    }

    /// Enable the hybrid static/dynamic scheduling layer: planning still
    /// produces the interval policy, but each kernel keeps its top-k
    /// implementations and dispatch picks among them per request by input
    /// size and per-device queue depth (with work stealing when
    /// `dynamic.steal`). Off by default — the purely static plan.
    #[must_use]
    pub fn dynamic(mut self, dynamic: DynamicDispatch) -> Self {
        self.dynamic = Some(dynamic);
        self
    }

    /// Override the node's provisioned execution backend for this run
    /// (default: the [`NodeSetup::backend`](crate::NodeSetup) the context
    /// carries). With [`ExecBackend::Cpu`], every adopted policy is
    /// re-timed from real host execution — see [`retime_policy`].
    #[must_use]
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The trace being replayed.
    #[must_use]
    pub fn trace(&self) -> &[TracePoint] {
        &self.trace
    }
}

/// Re-time `policy` for `backend`.
///
/// On the analytical backend this is the identity — the modeled
/// latencies flow into the DES untouched, bit-identical to the
/// pre-backend path. On the CPU backend every implementation — the
/// per-kernel primaries *and* the dispatch-time alternates, uniformly —
/// has its timing replaced by the measured wall-clock of the kernel's
/// micro-kernel execution ([`poly_backend::CpuClient::measure`]): batch
/// collapses to 1 and the power figures become the host package's. The
/// platform assignment (`kind`, `impl_index`) is untouched, so plan
/// structure, bitstream residency, and policy-change accounting are
/// preserved while the DES clock advances on measured time — modeled
/// transfer/reconfiguration overheads and measured kernel time coexist
/// in one clock.
///
/// Measurements are cached per kernel in the client, so re-timing the
/// same policy twice in one process is bit-stable (and cheap).
#[must_use]
pub fn retime_policy(policy: &Policy, backend: &ExecBackend, graph: &KernelGraph) -> Policy {
    let Some(client) = backend.cpu() else {
        return policy.clone();
    };
    let kernels = graph.kernels();
    let retime = |imp: &KernelImpl| -> KernelImpl {
        let k = &kernels[imp.kernel.0];
        let report = client.measure(k.name(), &k.profile());
        KernelImpl {
            latency_ms: report.latency_ms,
            latency_single_ms: report.latency_ms,
            service_ms: report.service_ms,
            batch: report.batch,
            active_power_w: report.active_power_w,
            idle_power_w: report.idle_power_w,
            ..*imp
        }
    };
    let retimed = Policy::from_impls(policy.impls().iter().map(retime).collect());
    if policy.has_alternates() {
        let alts = (0..policy.len())
            .map(|k| policy.alts_of(KernelId(k)).iter().map(retime).collect())
            .collect();
        retimed.with_alternate_impls(alts)
    } else {
        retimed
    }
}

/// The Poly runtime for one application on one provisioned node.
#[derive(Debug)]
pub struct PolyRuntime {
    ctx: AppContext,
    optimizer: Optimizer,
    monitor: SystemMonitor,
}

impl PolyRuntime {
    /// Runtime for the application/node bundle `ctx`.
    #[must_use]
    pub fn new(ctx: AppContext) -> Self {
        Self {
            ctx,
            optimizer: Optimizer::new(),
            monitor: SystemMonitor::new(8),
        }
    }

    /// The optimizer (e.g. to inspect the model's correction factor).
    #[must_use]
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// The application/node bundle this runtime drives.
    #[must_use]
    pub fn context(&self) -> &AppContext {
        &self.ctx
    }

    /// Make a planned policy adoptable: attach the design spaces' top-k
    /// alternates when the spec enables dynamic dispatch, then re-time
    /// everything for the run's execution backend (identity on the
    /// analytical backend — see [`retime_policy`]). Planning itself
    /// always works on the analytical design spaces; the backend only
    /// replaces the adopted timings.
    fn adopt(
        &self,
        policy: Policy,
        spec: &RunSpec,
        bound_ms: f64,
        backend: &ExecBackend,
    ) -> Policy {
        let policy = if spec.dynamic.is_some() {
            policy.with_alternates(
                self.ctx.spaces(),
                &self.ctx.setup().gpu,
                bound_ms,
                DYNAMIC_TOP_K,
            )
        } else {
            policy
        };
        retime_policy(&policy, backend, self.ctx.graph())
    }

    /// Replay `spec`: re-plan every interval from monitor feedback (Poly
    /// mode) or hold one policy (static mode), applying the spec's fault
    /// plan and recording telemetry into its recorder (if any).
    ///
    /// In Poly mode a device fault is detected at the next interval and
    /// the runtime re-plans onto the surviving devices, bypassing the
    /// change hysteresis — a failure is never "not worthwhile".
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn run(&mut self, spec: &RunSpec) -> TraceReport {
        let trace = &spec.trace;
        let interval_ms = spec.interval_ms;
        let mode = &spec.mode;
        let faults = &spec.faults;
        let bound_ms = self.ctx.bound_ms();
        let backend = spec
            .backend
            .clone()
            .unwrap_or_else(|| self.ctx.setup().backend.clone());

        // A fresh trace is a fresh workload context: re-seed the load EWMA
        // from what this trace actually offers.
        self.monitor.reset();
        // Initial policy: plan for the first interval's load.
        let first_rps = trace.first().map_or(0.0, |p| p.utilization * spec.max_rps);
        let (policy, mut predicted) = match mode {
            RuntimeMode::Poly => self.optimizer.plan_for_load(
                self.ctx.graph(),
                self.ctx.spaces(),
                &self.ctx.setup().pool,
                &self.ctx.setup().gpu,
                bound_ms,
                first_rps,
            ),
            RuntimeMode::Static(p) => {
                let pred = self.optimizer.model().predict(
                    self.ctx.graph(),
                    p,
                    &self.ctx.setup().pool,
                    first_rps,
                );
                (p.clone(), pred)
            }
        };
        // With the dynamic layer on, every adopted policy also carries
        // the plan's top-k alternates for the dispatch-time chooser; a
        // measured backend then re-times the whole policy.
        let mut policy = self.adopt(policy, spec, bound_ms, &backend);

        let mut sim_config = self.ctx.setup().sim_config.clone();
        if let Some(lc) = &spec.lifecycle {
            sim_config.lifecycle = lc.clone();
        }
        sim_config.dynamic = spec.dynamic;
        sim_config.backend_label = backend.label();
        let mut sim = Simulator::new(
            self.ctx.graph_owned(),
            &self.ctx.setup().pool,
            policy.clone(),
            sim_config,
        );
        sim.inject_faults(faults);
        let mut recorder = spec.recorder.clone();
        let recording = recorder.as_ref().is_some_and(|r| r.enabled());
        if recording {
            sim.set_recorder(recorder.clone());
        }
        // The pool the last plan was made against; diverging availability
        // (a fault fired during the previous interval) forces a re-plan.
        let mut avail = self.ctx.setup().pool.clone();

        let mut intervals = Vec::with_capacity(trace.len());
        // Per-interval measurement buffers, recycled across intervals
        // (`drain_segment_into` + the slice quantile helpers replace a
        // per-interval digest allocation).
        let mut seg_samples: Vec<f64> = Vec::new();
        let mut q_scratch: Vec<f64> = Vec::new();
        let mut energy_mj = 0.0;
        let mut total_completed = 0usize;
        let mut total_violations = 0usize;
        let mut total_fault_events = 0usize;
        let mut err_sum = 0.0;
        let mut err_n = 0usize;

        for (i, point) in trace.iter().enumerate() {
            let start = point.start_ms;
            let end = start + interval_ms;
            let offered_rps = point.utilization * spec.max_rps;

            // Re-plan from the monitor's estimate (skip the first interval,
            // already planned).
            let mut policy_changed = false;
            let mut reason: &'static str = match (i, mode) {
                (0, RuntimeMode::Poly) => "initial",
                (_, RuntimeMode::Static(_)) => "static",
                _ => "hold",
            };
            let mut load_est = if i == 0 { first_rps } else { offered_rps };
            if i > 0 {
                if let RuntimeMode::Poly = mode {
                    let now_avail = sim.available_pool();
                    let degraded = now_avail != avail;
                    if degraded {
                        avail = now_avail;
                    }
                    let est = self.monitor.load_estimate_rps().max(offered_rps * 0.1);
                    load_est = est;
                    if avail.is_empty() {
                        // Nothing left to plan on; ride out the outage with
                        // the current (inert) policy.
                        reason = "outage-hold";
                    } else if degraded {
                        // Availability changed since the last plan: re-plan
                        // unconditionally onto what actually remains.
                        reason = "degraded";
                        let (next, pred) = self.optimizer.plan_for_load(
                            self.ctx.graph(),
                            self.ctx.spaces(),
                            &avail,
                            &self.ctx.setup().gpu,
                            bound_ms,
                            est,
                        );
                        let next = self.adopt(next, spec, bound_ms, &backend);
                        if next != policy {
                            policy_changed = true;
                            sim.set_policy(next.clone());
                            policy = next;
                        }
                        predicted = pred;
                    } else {
                        let (next, pred) = self.optimizer.plan_for_load(
                            self.ctx.graph(),
                            self.ctx.spaces(),
                            &avail,
                            &self.ctx.setup().gpu,
                            bound_ms,
                            est,
                        );
                        let next = self.adopt(next, spec, bound_ms, &backend);
                        // Hysteresis: a policy change pays FPGA reconfiguration
                        // and transient tail spikes, so keep the current policy
                        // unless it is about to violate QoS or the candidate
                        // saves a meaningful amount of power.
                        let cur_pred =
                            self.optimizer
                                .model()
                                .predict(self.ctx.graph(), &policy, &avail, est);
                        let cur_ok =
                            cur_pred.p99_ms <= bound_ms * 0.85 && cur_pred.bottleneck_util <= 0.85;
                        let worthwhile = pred.avg_power_w < cur_pred.avg_power_w * 0.92;
                        if next != policy && (!cur_ok || worthwhile) {
                            reason = if cur_ok { "power-save" } else { "qos-pressure" };
                            policy_changed = true;
                            sim.set_policy(next.clone());
                            policy = next;
                            predicted = pred;
                        } else {
                            predicted = cur_pred;
                        }
                    }
                }
            }

            // Offer this interval's arrivals and run it.
            let arrivals: Vec<f64> =
                poisson(offered_rps, interval_ms, spec.seed.wrapping_add(i as u64))
                    .into_iter()
                    .map(|t| start + t)
                    .collect();
            if matches!(spec.sizes, SizeDist::Nominal) {
                sim.enqueue_arrivals(&arrivals);
            } else {
                // Decorrelate the size stream from the arrival stream
                // (same per-interval index, different seed lineage).
                let size_seed = spec
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64);
                let sizes = spec.sizes.sample(arrivals.len(), size_seed);
                sim.enqueue_arrivals_sized(&arrivals, &sizes);
            }
            sim.reset_accounting();
            sim.advance_to(end);
            let report = sim.finish(end);
            let (arrived, completed) = sim.drain_segment_into(&mut seg_samples);

            // `None` (no completions) folds to 0.0 for the records below;
            // their `completed` field keeps it distinguishable.
            let p99 = quantile_of(&seg_samples, 0.99, &mut q_scratch).unwrap_or(0.0);
            // Exact exceedance count — the former reconstruction through
            // `violation_ratio * completed` could drift off-by-one.
            let violations = violations_of(&seg_samples, bound_ms);
            let (fault_events, retried) = sim.take_fault_counts();
            let healthy_devices = sim.healthy_devices();
            total_completed += completed;
            total_violations += violations;
            total_fault_events += fault_events;
            energy_mj += report.energy_j * 1000.0;

            // Feed measurements back into the model, excluding intervals
            // that are statistically weak (few completions) or polluted by
            // a policy transition's reconfiguration spike.
            if matches!(mode, RuntimeMode::Poly)
                && completed >= 30
                && !policy_changed
                && predicted.p99_ms.is_finite()
            {
                let err = ((p99 - predicted.p99_ms) / p99.max(1e-9)).abs();
                err_sum += err.min(1.0);
                err_n += 1;
                self.optimizer.model_mut().observe(predicted.p99_ms, p99);
            }

            self.monitor.observe(IntervalObs {
                duration_ms: interval_ms,
                arrived,
                completed,
                p99_ms: p99,
                avg_power_w: report.avg_power_w,
                queued: sim.queued(),
            });

            if recording {
                if let Some(r) = recorder.as_mut() {
                    r.record(
                        end,
                        ObsEvent::Interval {
                            index: i,
                            start_ms: start,
                            dur_ms: interval_ms,
                            offered_rps,
                            load_est_rps: load_est,
                            policy_changed,
                            reason,
                            predicted_p99_ms: predicted.p99_ms,
                            observed_p99_ms: p99,
                            power_w: report.avg_power_w,
                            completed,
                            violations,
                        },
                    );
                }
            }

            intervals.push(IntervalRecord {
                start_ms: start,
                utilization: point.utilization,
                offered_rps,
                p99_ms: p99,
                predicted_p99_ms: predicted.p99_ms,
                avg_power_w: report.avg_power_w,
                policy_changed,
                violations,
                completed,
                healthy_devices,
                fault_events,
                retried,
            });
        }

        // Recovery latency: time from each fail-stop to the end of the
        // first subsequent interval that completed work back under the
        // bound.
        let mut recovery_sum = 0.0;
        let mut recovery_n = 0usize;
        for f in faults.fail_stops() {
            if let Some(r) = intervals
                .iter()
                .find(|r| r.start_ms >= f.at_ms && r.completed > 0 && r.p99_ms <= bound_ms)
            {
                recovery_sum += r.start_ms + interval_ms - f.at_ms;
                recovery_n += 1;
            }
        }

        let total_ms = trace.len() as f64 * interval_ms;
        TraceReport {
            intervals,
            energy_j: energy_mj / 1000.0,
            mean_power_w: if total_ms > 0.0 {
                energy_mj / total_ms
            } else {
                0.0
            },
            violation_ratio: if total_completed > 0 {
                total_violations as f64 / total_completed as f64
            } else {
                0.0
            },
            prediction_error: if err_n > 0 {
                err_sum / err_n as f64
            } else {
                0.0
            },
            fault_events: total_fault_events,
            retry: sim.retry_stats(),
            timed_out: sim.audit().timed_out,
            mean_recovery_ms: if recovery_n > 0 {
                recovery_sum / recovery_n as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provision::{table_iii, Architecture, Setting};
    use poly_dse::Explorer;

    fn runtime() -> PolyRuntime {
        let app = poly_apps::asr();
        let setup = table_iii(Setting::I, Architecture::HeterPoly);
        let ex = Explorer::new(setup.gpu.clone(), setup.fpga.clone());
        let spaces = app.kernels().iter().map(|k| ex.explore(k)).collect();
        PolyRuntime::new(AppContext::new(app, spaces, setup, 200.0))
    }

    fn flat_trace(n: usize, util: f64, interval_ms: f64) -> Vec<TracePoint> {
        (0..n)
            .map(|i| TracePoint {
                start_ms: i as f64 * interval_ms,
                utilization: util,
            })
            .collect()
    }

    #[test]
    fn light_load_trace_is_violation_free_and_cheap() {
        let mut rt = runtime();
        let trace = flat_trace(6, 0.15, 10_000.0);
        let report = rt.run(&RunSpec::new(&trace, 10_000.0, 20.0).seed(7));
        assert_eq!(report.intervals.len(), 6);
        assert!(report.violation_ratio < 0.05, "{}", report.violation_ratio);
        assert!(report.mean_power_w > 0.0);
    }

    #[test]
    fn load_step_triggers_replanning() {
        let mut rt = runtime();
        let mut trace = flat_trace(4, 0.1, 10_000.0);
        trace.extend(flat_trace(4, 0.9, 10_000.0).into_iter().map(|mut p| {
            p.start_ms += 40_000.0;
            p
        }));
        let report = rt.run(&RunSpec::new(&trace, 10_000.0, 20.0).seed(11));
        // Some interval after the step must adopt a different policy.
        assert!(
            report.intervals.iter().skip(4).any(|r| r.policy_changed),
            "{:?}",
            report
                .intervals
                .iter()
                .map(|r| r.policy_changed)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn static_mode_never_changes_policy() {
        let mut rt = runtime();
        // Build a static policy from the latency-only plan.
        let app = poly_apps::asr();
        let setup = table_iii(Setting::I, Architecture::HeterPoly);
        let ex = Explorer::new(setup.gpu.clone(), setup.fpga.clone());
        let spaces: Vec<_> = app.kernels().iter().map(|k| ex.explore(k)).collect();
        let plan = poly_sched::Scheduler::default()
            .plan_latency(&app, &spaces, &setup.pool)
            .unwrap();
        let policy = Policy::from_plan(&plan, &spaces, &setup.gpu);
        let trace = flat_trace(5, 0.3, 10_000.0);
        let report = rt.run(
            &RunSpec::new(&trace, 10_000.0, 15.0)
                .mode(RuntimeMode::Static(policy))
                .seed(3),
        );
        assert!(report.intervals.iter().all(|r| !r.policy_changed));
    }

    #[test]
    fn prediction_error_is_bounded() {
        let mut rt = runtime();
        let trace = flat_trace(8, 0.3, 10_000.0);
        let report = rt.run(&RunSpec::new(&trace, 10_000.0, 20.0).seed(21));
        assert!(report.prediction_error <= 1.0);
    }
}
