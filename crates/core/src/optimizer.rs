//! The system optimizer (the "Optimizer" box of Fig. 2): generate
//! candidate policies and pick the most efficient one predicted to meet
//! the QoS bound at the monitored load; under overload, maximize capacity.

use crate::{PolicyPrediction, SystemModel};
use poly_device::{DeviceKind, GpuModel, GpuTuning};
use poly_dse::{KernelDesignSpace, Tuning};
use poly_ir::{KernelGraph, KernelId};
use poly_sched::{Pool, Scheduler};
use poly_sim::{KernelImpl, Policy};

/// Build a simulator [`Policy`] from explicit per-kernel design-point
/// picks `(kind, impl_index)`.
///
/// # Panics
/// Panics if a pick indexes outside its kernel's frontier.
#[must_use]
pub fn policy_from_points(
    spaces: &[KernelDesignSpace],
    picks: &[(DeviceKind, usize)],
    gpu_model: &GpuModel,
) -> Policy {
    let impls = spaces
        .iter()
        .zip(picks)
        .enumerate()
        .map(|(i, (space, &(kind, index)))| {
            let point = &space.points(kind)[index];
            let latency_single_ms = match &point.tuning {
                Tuning::Gpu(t) => {
                    let single = GpuTuning {
                        batch: 1,
                        ..t.clone()
                    };
                    gpu_model.estimate(&space.profile, &single).latency_ms
                }
                Tuning::Fpga(_) => point.estimate.latency_ms,
            };
            KernelImpl {
                kernel: KernelId(i),
                kind,
                impl_index: index,
                latency_ms: point.estimate.latency_ms,
                latency_single_ms,
                service_ms: point.estimate.service_ms,
                batch: point.estimate.batch,
                active_power_w: point.estimate.active_power_w,
                idle_power_w: point.estimate.idle_power_w,
            }
        })
        .collect();
    Policy::from_impls(impls)
}

/// The load-aware policy optimizer.
///
/// Candidates per decision:
/// 1. the two-step Poly plan (latency then energy within the bound),
/// 2. the latency-only plan (overload reaction),
/// 3. **capacity plans**: every assignment of kernels to platforms
///    (2^K for the ≤ 4-kernel apps of Table II), each kernel using the
///    minimum-service implementation whose full-batch latency fits its
///    proportional share of the bound.
///
/// Selection: among candidates whose predicted p99 at the load stays
/// within `headroom × bound` and whose capacity exceeds the load by the
/// same margin, pick the lowest predicted power; otherwise fall back to
/// the highest-capacity candidate (the "shift to higher performance mode"
/// reaction of Section VI-C).
#[derive(Debug, Clone)]
pub struct Optimizer {
    model: SystemModel,
    scheduler: Scheduler,
    /// Fraction of the bound the optimizer is willing to fill (default
    /// 0.85 — QoS-sensitive systems keep a safety margin).
    pub headroom: f64,
}

impl Optimizer {
    /// Optimizer with a fresh model and default headroom.
    #[must_use]
    pub fn new() -> Self {
        Self {
            model: SystemModel::new(),
            scheduler: Scheduler::default(),
            headroom: 0.85,
        }
    }

    /// Access the underlying system model (e.g. to apply feedback).
    pub fn model_mut(&mut self) -> &mut SystemModel {
        &mut self.model
    }

    /// The underlying system model.
    #[must_use]
    pub fn model(&self) -> &SystemModel {
        &self.model
    }

    /// Choose a policy for load `rps` under `bound_ms`. Returns the policy
    /// and its prediction at that load.
    ///
    /// # Panics
    /// Panics if the scheduler cannot produce any plan (mismatched spaces
    /// or empty pool) — configuration errors, not runtime conditions.
    #[must_use]
    pub fn plan_for_load(
        &mut self,
        graph: &KernelGraph,
        spaces: &[KernelDesignSpace],
        pool: &Pool,
        gpu_model: &GpuModel,
        bound_ms: f64,
        rps: f64,
    ) -> (Policy, PolicyPrediction) {
        self.plan_for_load_capped(graph, spaces, pool, gpu_model, bound_ms, rps, f64::INFINITY)
    }

    /// [`plan_for_load`](Self::plan_for_load) under a node power cap: among
    /// the QoS-feasible candidates, prefer those whose predicted mean power
    /// stays within `power_cap_w` — the hook a cluster-wide power governor
    /// uses when it re-splits the fleet budget across nodes.
    ///
    /// The cap is a *soft* constraint: when no QoS-feasible candidate fits
    /// under it, the lowest-power feasible candidate is chosen anyway (QoS
    /// is never sacrificed to the budget), and under overload the
    /// highest-capacity candidate wins regardless of power — the paper's
    /// "shift to higher performance mode" reaction. A cap of
    /// `f64::INFINITY` reduces exactly to [`plan_for_load`].
    ///
    /// # Panics
    /// Panics if the scheduler cannot produce any plan (mismatched spaces
    /// or empty pool) — configuration errors, not runtime conditions.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn plan_for_load_capped(
        &mut self,
        graph: &KernelGraph,
        spaces: &[KernelDesignSpace],
        pool: &Pool,
        gpu_model: &GpuModel,
        bound_ms: f64,
        rps: f64,
        power_cap_w: f64,
    ) -> (Policy, PolicyPrediction) {
        let mut candidates: Vec<Policy> = Vec::new();

        // 1–2: the two-step plan and the latency-only plan.
        if let Ok(plan) = self
            .scheduler
            .plan(graph, spaces, pool, bound_ms * self.headroom)
        {
            candidates.push(Policy::from_plan(&plan, spaces, gpu_model));
        }
        if let Ok(plan) = self.scheduler.plan_latency(graph, spaces, pool) {
            candidates.push(Policy::from_plan(&plan, spaces, gpu_model));
        }

        // 3: capacity plans over all platform assignments.
        candidates.extend(self.capacity_plans(graph, spaces, pool, gpu_model, bound_ms));
        assert!(!candidates.is_empty(), "no schedulable candidate policy");

        // --- selection ---------------------------------------------------
        let preds: Vec<PolicyPrediction> = candidates
            .iter()
            .map(|p| self.model.predict(graph, p, pool, rps))
            .collect();
        let ok = |p: &PolicyPrediction| {
            p.p99_ms <= bound_ms * self.headroom && p.bottleneck_util <= self.headroom
        };
        let capped = |p: &PolicyPrediction| ok(p) && p.avg_power_w <= power_cap_w;
        let min_power = |filter: &dyn Fn(&PolicyPrediction) -> bool| {
            candidates
                .iter()
                .zip(&preds)
                .filter(|(_, p)| filter(p))
                .min_by(|a, b| a.1.avg_power_w.total_cmp(&b.1.avg_power_w))
                .map(|(c, _)| c)
        };
        let chosen = if preds.iter().any(&capped) {
            min_power(&capped)
        } else if preds.iter().any(ok) {
            // Nothing fits the budget: keep QoS and get as close to the
            // cap as the hardware allows.
            min_power(&ok)
        } else {
            candidates
                .iter()
                .zip(&preds)
                .max_by(|a, b| a.1.capacity_rps.total_cmp(&b.1.capacity_rps))
                .map(|(c, _)| c)
        };
        let policy = chosen.expect("non-empty candidates").clone();
        let prediction = self.model.predict(graph, &policy, pool, rps);
        (policy, prediction)
    }

    /// The best *fixed* policy for maximum sustainable throughput under
    /// the bound — how the homogeneous baselines of Section VI-A are
    /// provisioned (a competent static choice, just never re-planned).
    ///
    /// # Panics
    /// Panics if no candidate policy exists for the pool.
    #[must_use]
    pub fn max_capacity_policy(
        &mut self,
        graph: &KernelGraph,
        spaces: &[KernelDesignSpace],
        pool: &Pool,
        gpu_model: &GpuModel,
        bound_ms: f64,
    ) -> Policy {
        let mut candidates = self.capacity_plans(graph, spaces, pool, gpu_model, bound_ms);
        if let Ok(plan) = self.scheduler.plan_latency(graph, spaces, pool) {
            candidates.push(Policy::from_plan(&plan, spaces, gpu_model));
        }
        assert!(!candidates.is_empty(), "no schedulable candidate policy");
        candidates
            .into_iter()
            .map(|c| {
                let pred = self.model.predict(graph, &c, pool, 0.0);
                (c, pred)
            })
            .max_by(|a, b| {
                let score = |p: &PolicyPrediction, ok: bool| {
                    if ok {
                        p.capacity_rps
                    } else {
                        p.capacity_rps * 1e-6
                    }
                };
                let ok_a = a.1.p99_ms <= bound_ms * self.headroom;
                let ok_b = b.1.p99_ms <= bound_ms * self.headroom;
                score(&a.1, ok_a).total_cmp(&score(&b.1, ok_b))
            })
            .map(|(c, _)| c)
            .expect("non-empty candidates")
    }

    /// Enumerate capacity-oriented policies: every platform assignment of
    /// kernels (bounded at 2^12), minimum-service implementations within a
    /// per-kernel latency share.
    fn capacity_plans(
        &self,
        graph: &KernelGraph,
        spaces: &[KernelDesignSpace],
        pool: &Pool,
        gpu_model: &GpuModel,
        bound_ms: f64,
    ) -> Vec<Policy> {
        let k = graph.len();
        if k > 12 {
            return Vec::new();
        }
        // Per-kernel latency budget: proportional share of the bound by
        // each kernel's fastest latency.
        let fast: Vec<f64> = spaces
            .iter()
            .map(|s| {
                s.min_latency_any()
                    .map_or(f64::INFINITY, |p| p.latency_ms())
            })
            .collect();
        let fast_path = graph.critical_path(|kid| fast[kid.0], |_| 0.0).max(1e-9);
        let caps: Vec<f64> = fast
            .iter()
            .map(|f| (f / fast_path * bound_ms * self.headroom).max(*f))
            .collect();

        let mut out = Vec::new();
        'combo: for mask in 0u32..(1 << k) {
            let mut picks = Vec::with_capacity(k);
            for i in 0..k {
                let kind = if mask & (1 << i) != 0 {
                    DeviceKind::Gpu
                } else {
                    DeviceKind::Fpga
                };
                if !pool.has(kind) {
                    continue 'combo;
                }
                // Min-service point whose full-batch latency fits the cap
                // (throughput variant) and min-dynamic-energy point within
                // the same cap (efficiency variant); fall back to the
                // platform's fastest point.
                let fitting = || {
                    spaces[i]
                        .points(kind)
                        .iter()
                        .filter(|p| p.latency_ms() <= caps[i])
                };
                let fast = fitting()
                    .min_by(|a, b| a.service_ms().total_cmp(&b.service_ms()))
                    .or_else(|| spaces[i].min_latency(kind));
                let eff = fitting()
                    .min_by(|a, b| a.dynamic_energy_mj().total_cmp(&b.dynamic_energy_mj()))
                    .or_else(|| spaces[i].min_latency(kind));
                let (Some(fast), Some(eff)) = (fast, eff) else {
                    continue 'combo;
                };
                picks.push(((kind, fast.index), (kind, eff.index)));
            }
            // Avoid FPGA bitstream thrash: never assign more FPGA kernels
            // than FPGA devices.
            let fpga_kernels = picks
                .iter()
                .filter(|((k, _), _)| *k == DeviceKind::Fpga)
                .count();
            if fpga_kernels > pool.count(DeviceKind::Fpga) && fpga_kernels > 0 {
                continue;
            }
            let fast: Vec<(DeviceKind, usize)> = picks.iter().map(|(f, _)| *f).collect();
            let eff: Vec<(DeviceKind, usize)> = picks.iter().map(|(_, e)| *e).collect();
            out.push(policy_from_points(spaces, &fast, gpu_model));
            if eff != fast {
                out.push(policy_from_points(spaces, &eff, gpu_model));
            }
        }
        out
    }
}

impl Default for Optimizer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_device::catalog;
    use poly_dse::Explorer;
    use poly_ir::{KernelBuilder, KernelGraphBuilder, OpFunc, PatternKind, Shape};

    fn setup() -> (KernelGraph, Vec<KernelDesignSpace>, GpuModel) {
        let k = KernelBuilder::new("t")
            .pattern("m", PatternKind::Map, Shape::d2(1024, 512), &[OpFunc::Mac])
            .iterations(800)
            .build()
            .unwrap();
        let app = KernelGraphBuilder::new("app")
            .kernel(k.with_name("a"))
            .kernel(k.with_name("b"))
            .edge("a", "b", 1 << 20)
            .build()
            .unwrap();
        let gpu = catalog::amd_w9100();
        let ex = Explorer::new(gpu.clone(), catalog::xilinx_7v3());
        let spaces = app.kernels().iter().map(|k| ex.explore(k)).collect();
        (app, spaces, gpu)
    }

    #[test]
    fn low_load_prefers_low_power() {
        let (app, spaces, gpu) = setup();
        let pool = Pool::heterogeneous(1, 4);
        let mut opt = Optimizer::new();
        let (_, low) = opt.plan_for_load(&app, &spaces, &pool, &gpu, 200.0, 1.0);
        let (_, high) = opt.plan_for_load(&app, &spaces, &pool, &gpu, 200.0, 30.0);
        assert!(low.avg_power_w <= high.avg_power_w + 1e-9);
    }

    #[test]
    fn high_load_prefers_capacity() {
        let (app, spaces, gpu) = setup();
        let pool = Pool::heterogeneous(1, 4);
        let mut opt = Optimizer::new();
        let (_, low) = opt.plan_for_load(&app, &spaces, &pool, &gpu, 200.0, 1.0);
        let (_, high) = opt.plan_for_load(&app, &spaces, &pool, &gpu, 200.0, 1000.0);
        assert!(high.capacity_rps >= low.capacity_rps);
    }

    #[test]
    fn capacity_plans_respect_fpga_device_limit() {
        let (app, spaces, gpu) = setup();
        // Single FPGA: plans with both kernels on FPGA must be excluded.
        let pool = Pool::heterogeneous(1, 1);
        let opt = Optimizer::new();
        let plans = opt.capacity_plans(&app, &spaces, &pool, &gpu, 200.0);
        for p in &plans {
            let fpga_kernels = p
                .impls()
                .iter()
                .filter(|i| i.kind == DeviceKind::Fpga)
                .count();
            assert!(fpga_kernels <= 1, "{fpga_kernels} FPGA kernels on 1 device");
        }
    }

    #[test]
    fn policy_from_points_roundtrips_indices() {
        let (_, spaces, gpu) = setup();
        let picks = vec![(DeviceKind::Gpu, 0), (DeviceKind::Fpga, 0)];
        let policy = policy_from_points(&spaces, &picks, &gpu);
        assert_eq!(policy.of(KernelId(0)).kind, DeviceKind::Gpu);
        assert_eq!(policy.of(KernelId(1)).kind, DeviceKind::Fpga);
        assert_eq!(policy.of(KernelId(1)).impl_index, 0);
    }

    #[test]
    fn uncapped_plan_matches_plan_for_load() {
        let (app, spaces, gpu) = setup();
        let pool = Pool::heterogeneous(1, 4);
        let mut a = Optimizer::new();
        let mut b = Optimizer::new();
        let (pa, ra) = a.plan_for_load(&app, &spaces, &pool, &gpu, 200.0, 5.0);
        let (pb, rb) =
            b.plan_for_load_capped(&app, &spaces, &pool, &gpu, 200.0, 5.0, f64::INFINITY);
        assert_eq!(pa, pb);
        assert_eq!(ra, rb);
    }

    #[test]
    fn power_cap_is_soft_and_never_breaks_qos() {
        let (app, spaces, gpu) = setup();
        let pool = Pool::heterogeneous(1, 4);
        let mut opt = Optimizer::new();
        let (_, loose) =
            opt.plan_for_load_capped(&app, &spaces, &pool, &gpu, 200.0, 5.0, f64::INFINITY);
        // A cap below every candidate's power: QoS still holds and the
        // lowest-power feasible plan is chosen (same as the loose pick,
        // which already minimizes power).
        let (_, tight) = opt.plan_for_load_capped(&app, &spaces, &pool, &gpu, 200.0, 5.0, 1.0);
        assert!(tight.p99_ms <= 200.0, "{tight:?}");
        assert!(tight.avg_power_w <= loose.avg_power_w + 1e-9);
        // A cap sitting exactly at the loose pick's power keeps it.
        let (_, at) =
            opt.plan_for_load_capped(&app, &spaces, &pool, &gpu, 200.0, 5.0, loose.avg_power_w);
        assert!((at.avg_power_w - loose.avg_power_w).abs() < 1e-9);
    }

    #[test]
    fn chosen_policy_meets_bound_when_feasible() {
        let (app, spaces, gpu) = setup();
        let pool = Pool::heterogeneous(1, 4);
        let mut opt = Optimizer::new();
        let (_, pred) = opt.plan_for_load(&app, &spaces, &pool, &gpu, 200.0, 2.0);
        assert!(pred.p99_ms <= 200.0, "{pred:?}");
    }
}
