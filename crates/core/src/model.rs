//! The analytic system model of the runtime (the "Model" box of Fig. 2):
//! predicts capacity, tail latency, and node power for a candidate policy
//! at a given request rate, and self-corrects from measurements.

use poly_device::DeviceKind;
use poly_ir::KernelGraph;
use poly_sched::Pool;
use poly_sim::Policy;

/// Prediction for one `(policy, load)` operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyPrediction {
    /// Sustainable throughput of the bottleneck platform, in RPS.
    pub capacity_rps: f64,
    /// Predicted p99 latency at the queried load, in milliseconds
    /// (`f64::INFINITY` beyond capacity).
    pub p99_ms: f64,
    /// Predicted mean node power at the queried load, in watts.
    pub avg_power_w: f64,
    /// Utilization of the bottleneck platform at the queried load.
    pub bottleneck_util: f64,
}

/// Analytic queueing model with multiplicative feedback correction.
///
/// Capacity comes from per-platform service demand (GPUs pool their
/// kernels; each FPGA kernel needs dedicated devices with its bitstream,
/// and plans with more FPGA kernels than FPGAs are charged reconfiguration
/// thrash). Tail latency is the critical-path latency at the expected
/// batch fill plus an M/M/1-style tail waiting term. Power is the sum of
/// configured idle power plus load-proportional dynamic energy.
///
/// [`observe`](Self::observe) folds measured p99 back into a correction
/// factor, reproducing the feedback loop the paper uses to tolerate
/// prediction error (Section VI-C, error < 6%).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemModel {
    correction: f64,
}

/// p99 of an M/M/1-ish wait is ≈ `-ln(0.01) ≈ 4.6` mean waits.
const TAIL_FACTOR: f64 = 4.6;

impl SystemModel {
    /// Fresh model with no correction (factor 1).
    #[must_use]
    pub fn new() -> Self {
        Self { correction: 1.0 }
    }

    /// Current multiplicative latency-correction factor.
    #[must_use]
    pub fn correction(&self) -> f64 {
        self.correction
    }

    /// Fold a measurement into the correction factor (EWMA, α = 0.3).
    /// Ratios are clamped to `[0.25, 4]` so one bad interval cannot wreck
    /// the model.
    pub fn observe(&mut self, predicted_p99_ms: f64, measured_p99_ms: f64) {
        if !(predicted_p99_ms.is_finite() && measured_p99_ms.is_finite())
            || predicted_p99_ms <= 0.0
            || measured_p99_ms <= 0.0
        {
            return;
        }
        let ratio = (measured_p99_ms / predicted_p99_ms).clamp(0.25, 4.0);
        self.correction = 0.7 * self.correction + 0.3 * self.correction * ratio;
        self.correction = self.correction.clamp(0.5, 2.5);
    }

    /// Predict the operating point of `policy` on `pool` at `rps`.
    #[must_use]
    pub fn predict(
        &self,
        graph: &KernelGraph,
        policy: &Policy,
        pool: &Pool,
        rps: f64,
    ) -> PolicyPrediction {
        let n_gpu = pool.count(DeviceKind::Gpu) as f64;
        let n_fpga = pool.count(DeviceKind::Fpga) as f64;

        // --- per-platform service demand -----------------------------------
        let gpu_demand: f64 = policy
            .impls()
            .iter()
            .filter(|i| i.kind == DeviceKind::Gpu)
            .map(|i| i.service_ms)
            .sum();
        let fpga_impls: Vec<&poly_sim::KernelImpl> = policy
            .impls()
            .iter()
            .filter(|i| i.kind == DeviceKind::Fpga)
            .collect();

        let gpu_capacity = if gpu_demand > 0.0 {
            if n_gpu == 0.0 {
                0.0
            } else {
                n_gpu * 1000.0 / gpu_demand
            }
        } else {
            f64::INFINITY
        };

        // FPGA kernels pin bitstreams: split the devices proportionally to
        // demand (largest remainder, ≥1 per kernel when possible).
        let fpga_capacity = if fpga_impls.is_empty() {
            f64::INFINITY
        } else if n_fpga == 0.0 {
            0.0
        } else if fpga_impls.len() as f64 > n_fpga {
            // Thrash: every request pays bitstream swaps on top of service.
            let demand: f64 = fpga_impls.iter().map(|i| i.service_ms).sum();
            let reconfig = 2.0 * 220.0; // pessimistic swap charge
            n_fpga * 1000.0 / (demand + reconfig)
        } else {
            let total: f64 = fpga_impls.iter().map(|i| i.service_ms).sum();
            let mut devs: Vec<f64> = fpga_impls
                .iter()
                .map(|i| (i.service_ms / total * n_fpga).floor().max(1.0))
                .collect();
            let mut spare = n_fpga - devs.iter().sum::<f64>();
            // Hand spare devices to the most loaded kernels.
            while spare >= 1.0 {
                let (worst, _) = fpga_impls
                    .iter()
                    .enumerate()
                    .map(|(j, i)| (j, i.service_ms / devs[j]))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("non-empty");
                devs[worst] += 1.0;
                spare -= 1.0;
            }
            fpga_impls
                .iter()
                .enumerate()
                .map(|(j, i)| devs[j] * 1000.0 / i.service_ms)
                .fold(f64::INFINITY, f64::min)
        };

        let capacity_rps = gpu_capacity.min(fpga_capacity);
        let util = if capacity_rps.is_finite() && capacity_rps > 0.0 {
            rps / capacity_rps
        } else if capacity_rps == 0.0 {
            f64::INFINITY
        } else {
            0.0
        };

        // --- latency ---------------------------------------------------------
        let rho_gpu = if gpu_capacity.is_finite() && gpu_capacity > 0.0 {
            (rps / gpu_capacity).min(1.0)
        } else {
            0.0
        };
        let path = graph.critical_path(
            |k| {
                let i = policy.of(k);
                // Expected batch fill grows with GPU utilization.
                let fill = 1.0 + (f64::from(i.batch) - 1.0) * rho_gpu;
                i.exec_ms(fill.round() as u32)
            },
            |e| {
                let differs = policy.of(e.from).kind != policy.of(e.to).kind;
                if differs {
                    poly_device::PcieLink::gen3_x16().transfer_ms(e.bytes)
                } else {
                    0.0
                }
            },
        );
        let p99_ms = if util >= 1.0 {
            f64::INFINITY
        } else {
            let bottleneck_svc = policy
                .impls()
                .iter()
                .map(|i| i.service_ms)
                .fold(0.0_f64, f64::max);
            (path + TAIL_FACTOR * bottleneck_svc * util / (1.0 - util)) * self.correction
        };

        // --- power -----------------------------------------------------------
        let mut idle = 0.0;
        // GPUs idle at the policy's GPU idle power (or 0 contribution if
        // no GPU kernel: still the board idles — use min impl idle or a
        // floor of the first GPU impl; fall back to 42 W-class idles only
        // through the policy, keeping the model device-agnostic).
        let gpu_idle = policy
            .impls()
            .iter()
            .filter(|i| i.kind == DeviceKind::Gpu)
            .map(|i| i.idle_power_w)
            .fold(f64::NAN, f64::min);
        let fpga_idle = policy
            .impls()
            .iter()
            .filter(|i| i.kind == DeviceKind::Fpga)
            .map(|i| i.idle_power_w)
            .fold(f64::NAN, f64::min);
        if gpu_idle.is_finite() {
            idle += n_gpu * gpu_idle;
        } else {
            // Unused GPUs park at deep idle (typical W9100-class board:
            // 42 W idle × parked fraction).
            idle += n_gpu * 42.0 * poly_sim::GPU_PARKED_FRACTION;
        }
        if fpga_idle.is_finite() {
            idle += n_fpga * fpga_idle;
        } else {
            // Unconfigured FPGAs draw static power only (≈4.5 W class).
            idle += n_fpga * 4.5;
        }
        let dynamic_mj_per_req: f64 = policy
            .impls()
            .iter()
            .map(|i| (i.active_power_w - i.idle_power_w).max(0.0) * i.service_ms)
            .sum();
        let avg_power_w = idle + rps * dynamic_mj_per_req / 1000.0;

        PolicyPrediction {
            capacity_rps,
            p99_ms,
            avg_power_w,
            bottleneck_util: util,
        }
    }
}

impl Default for SystemModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_ir::{KernelBuilder, KernelGraphBuilder, KernelId, OpFunc, PatternKind, Shape};
    use poly_sim::KernelImpl;

    fn graph2() -> KernelGraph {
        let k = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(64), &[OpFunc::Add])
            .build()
            .unwrap();
        KernelGraphBuilder::new("app")
            .kernel(k.clone())
            .kernel(k.with_name("b"))
            .edge("a", "b", 1 << 20)
            .build()
            .unwrap()
    }

    fn imp(kernel: usize, kind: DeviceKind, svc: f64) -> KernelImpl {
        KernelImpl {
            kernel: KernelId(kernel),
            kind,
            impl_index: 0,
            latency_ms: svc * 1.2,
            latency_single_ms: svc * 1.2,
            service_ms: svc,
            batch: 1,
            active_power_w: if kind == DeviceKind::Gpu { 200.0 } else { 25.0 },
            idle_power_w: if kind == DeviceKind::Gpu { 40.0 } else { 5.0 },
        }
    }

    #[test]
    fn capacity_scales_with_devices() {
        let g = graph2();
        let policy = Policy::from_impls(vec![
            imp(0, DeviceKind::Fpga, 50.0),
            imp(1, DeviceKind::Fpga, 50.0),
        ]);
        let m = SystemModel::new();
        let two = m.predict(&g, &policy, &poly_sched::Pool::heterogeneous(0, 2), 1.0);
        let four = m.predict(&g, &policy, &poly_sched::Pool::heterogeneous(0, 4), 1.0);
        assert!((two.capacity_rps - 20.0).abs() < 1e-9); // 1 dev/kernel, 1000/50
        assert!((four.capacity_rps - 40.0).abs() < 1e-9);
    }

    #[test]
    fn p99_grows_toward_capacity_and_diverges() {
        let g = graph2();
        let policy = Policy::from_impls(vec![
            imp(0, DeviceKind::Gpu, 20.0),
            imp(1, DeviceKind::Gpu, 20.0),
        ]);
        let m = SystemModel::new();
        let pool = poly_sched::Pool::heterogeneous(2, 0);
        let low = m.predict(&g, &policy, &pool, 5.0);
        let high = m.predict(&g, &policy, &pool, 45.0);
        assert!(high.p99_ms > low.p99_ms);
        let over = m.predict(&g, &policy, &pool, 60.0); // capacity = 50
        assert!(over.p99_ms.is_infinite());
    }

    #[test]
    fn fpga_thrash_penalized_when_kernels_exceed_devices() {
        let g = graph2();
        let policy = Policy::from_impls(vec![
            imp(0, DeviceKind::Fpga, 50.0),
            imp(1, DeviceKind::Fpga, 50.0),
        ]);
        let m = SystemModel::new();
        let one = m.predict(&g, &policy, &poly_sched::Pool::heterogeneous(0, 1), 1.0);
        // Thrash charge collapses capacity far below 1000/100 = 10 RPS.
        assert!(one.capacity_rps < 5.0, "{}", one.capacity_rps);
    }

    #[test]
    fn power_is_idle_plus_linear_dynamic() {
        let g = graph2();
        let policy = Policy::from_impls(vec![
            imp(0, DeviceKind::Fpga, 50.0),
            imp(1, DeviceKind::Fpga, 50.0),
        ]);
        let m = SystemModel::new();
        let pool = poly_sched::Pool::heterogeneous(0, 2);
        let idle = m.predict(&g, &policy, &pool, 0.0);
        assert!((idle.avg_power_w - 10.0).abs() < 1e-9); // 2 × 5 W
        let loaded = m.predict(&g, &policy, &pool, 10.0);
        // + 10 rps × (20 W × 100 ms) = 20 W dynamic.
        assert!((loaded.avg_power_w - 30.0).abs() < 1e-9);
    }

    #[test]
    fn feedback_converges_in_closed_loop() {
        // The true system is 1.5× the uncorrected model. Predictions carry
        // the current correction, so the residual ratio shrinks to 1 as
        // the correction converges to 1.5.
        let mut m = SystemModel::new();
        for _ in 0..40 {
            let predicted = 100.0 * m.correction();
            m.observe(predicted, 150.0);
        }
        assert!((m.correction() - 1.5).abs() < 0.05, "{}", m.correction());
        // Garbage measurements are ignored.
        let before = m.correction();
        m.observe(f64::NAN, 100.0);
        m.observe(0.0, 100.0);
        assert_eq!(m.correction(), before);
    }

    #[test]
    fn cross_platform_edges_pay_pcie_in_path() {
        // Big payload (64 MiB ≈ 5.4 ms on PCIe) and two FPGAs so neither
        // policy is thrash-penalized.
        let k = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(64), &[OpFunc::Add])
            .build()
            .unwrap();
        let g = KernelGraphBuilder::new("app")
            .kernel(k.clone())
            .kernel(k.with_name("b"))
            .edge("a", "b", 64 << 20)
            .build()
            .unwrap();
        let same = Policy::from_impls(vec![
            imp(0, DeviceKind::Fpga, 50.0),
            imp(1, DeviceKind::Fpga, 50.0),
        ]);
        let cross = Policy::from_impls(vec![
            imp(0, DeviceKind::Gpu, 50.0),
            imp(1, DeviceKind::Fpga, 50.0),
        ]);
        let m = SystemModel::new();
        let pool = poly_sched::Pool::heterogeneous(1, 2);
        let p_same = m.predict(&g, &same, &pool, 0.1);
        let p_cross = m.predict(&g, &cross, &pool, 0.1);
        assert!(p_cross.p99_ms > p_same.p99_ms, "{p_cross:?} vs {p_same:?}");
    }
}
