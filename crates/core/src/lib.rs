//! # poly-core — the Poly framework
//!
//! Ties the whole system together (Fig. 2 of the paper):
//!
//! - [`provision`] assembles the three leaf-node architectures of
//!   Table III (*Homo-GPU*, *Homo-FPGA*, *Heter-Poly*) under a power cap,
//!   for each hardware setting (I–III).
//! - [`SystemModel`] is the analytic model of the runtime: it predicts
//!   capacity, p99 latency, and node power for a candidate policy at a
//!   given load, and self-corrects from measurements (the feedback loop of
//!   Section VI-C).
//! - [`Optimizer`] generates candidate policies — the two-step scheduler
//!   plan plus capacity-balanced platform assignments — and picks the most
//!   efficient one predicted to meet QoS at the monitored load.
//! - [`SystemMonitor`] tracks arrivals, tail latency, and power per
//!   re-planning interval.
//! - [`PolyRuntime`] drives the discrete-event simulator interval by
//!   interval over a utilization trace, re-planning from monitor feedback —
//!   the engine behind the 24-hour trace evaluation (Figs. 11–12).
//! - [`tco`] implements the Google-style total-cost-of-ownership model
//!   behind the cost-efficiency analysis (Fig. 14).
//! - [`Poly`] is the one-type facade tying it all together: offline
//!   exploration at construction, plans / policies / simulators on demand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod framework;
mod model;
mod monitor;
mod optimizer;
pub mod provision;
mod runtime;
pub mod tco;

pub use context::AppContext;
pub use framework::Poly;
pub use model::{PolicyPrediction, SystemModel};
pub use monitor::{IntervalObs, SystemMonitor};
pub use optimizer::{policy_from_points, Optimizer};
pub use provision::{Architecture, NodeSetup, Setting};
pub use runtime::{retime_policy, IntervalRecord, PolyRuntime, RunSpec, RuntimeMode, TraceReport};
