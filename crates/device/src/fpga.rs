use crate::{Estimate, FpgaSpec};
use poly_ir::KernelProfile;
use std::fmt;

/// Tunable implementation parameters of an FPGA kernel — the aggregate
/// effect of the per-pattern knobs of Table I (compute units, loop
/// unrolling, BRAM port partitioning, hardware pipelining, double
/// buffering) plus fusion from the global optimization step.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaTuning {
    /// Replicated compute units (the `num_compute_units` pragma).
    pub compute_units: u32,
    /// Loop unroll factor inside each compute unit.
    pub unroll: u32,
    /// BRAM partition factor — simultaneous on-chip access ports feeding
    /// the datapath lanes.
    pub bram_ports: u32,
    /// Whether the datapath is pipelined (`#pragma HLS pipeline`,
    /// Fig. 5(b) line 6). Unpipelined designs stall on the dependency
    /// chain of each element.
    pub pipelined: bool,
    /// Whether load/compute/store are double-buffered, overlapping
    /// successive requests.
    pub double_buffer: bool,
    /// Fraction of inter-pattern traffic kept on chip by fusion, in
    /// `\[0, 1\]`. Fused state must fit in BRAM.
    pub fused_fraction: f64,
}

impl Default for FpgaTuning {
    fn default() -> Self {
        Self {
            compute_units: 1,
            unroll: 1,
            bram_ports: 1,
            pipelined: true,
            double_buffer: false,
            fused_fraction: 0.0,
        }
    }
}

impl FpgaTuning {
    /// Total datapath lanes (`compute_units × unroll`).
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.compute_units.max(1) * self.unroll.max(1)
    }

    /// Short key used in design-space dumps, e.g. `cu2_u16_p8_pd_f50`.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "cu{}_u{}_p{}_{}{}_f{:.0}",
            self.compute_units,
            self.unroll,
            self.bram_ports,
            if self.pipelined { "p" } else { "-" },
            if self.double_buffer { "d" } else { "-" },
            self.fused_fraction * 100.0
        )
    }
}

/// Resource usage of one FPGA implementation, checked against the device's
/// capacity during design-space exploration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaResources {
    /// DSP slices consumed.
    pub dsp: u32,
    /// LUT-equivalent logic cells consumed.
    pub luts: u64,
    /// On-chip BRAM bytes consumed.
    pub bram_bytes: u64,
    /// Peak fractional utilization across the three resource classes,
    /// in `\[0, 1\]` for feasible designs.
    pub utilization: f64,
}

/// Error returned when an implementation does not fit on the device.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaOverflow {
    /// The exhausted resource class (`"dsp"`, `"lut"`, or `"bram"`).
    pub resource: &'static str,
    /// Demanded amount in that resource's unit.
    pub demanded: u64,
    /// Available amount in that resource's unit.
    pub available: u64,
}

impl fmt::Display for FpgaOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "implementation exceeds {} capacity ({} demanded, {} available)",
            self.resource, self.demanded, self.available
        )
    }
}

impl std::error::Error for FpgaOverflow {}

/// Analytical FPGA performance, resource, and power model in the spirit of
/// FlexCL \[26, 48, 50\]: throughput follows from datapath lanes and their
/// initiation interval, the achievable clock degrades with routing
/// congestion (utilization), and power is proportional to resource
/// utilization \[51\].
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaModel {
    spec: FpgaSpec,
}

/// Host-side invocation overhead (enqueue + DMA descriptor setup).
const HOST_OVERHEAD_MS: f64 = 0.05;

/// On-chip staging (working buffers) per compute unit in bytes.
const STAGING_BYTES_PER_CU: u64 = 64 << 10;

/// Elements each BRAM port can feed per cycle after partitioning.
const ELEMS_PER_PORT: f64 = 6.0;

impl FpgaModel {
    /// Wrap an FPGA specification in the analytical model.
    #[must_use]
    pub fn new(spec: FpgaSpec) -> Self {
        Self { spec }
    }

    /// The wrapped specification.
    #[must_use]
    pub fn spec(&self) -> &FpgaSpec {
        &self.spec
    }

    /// Time to load a new bitstream onto this device.
    #[must_use]
    pub fn reconfig_ms(&self) -> f64 {
        self.spec.reconfig_ms
    }

    /// Resource usage of implementing `profile` with tuning `t`.
    ///
    /// # Errors
    /// Returns [`FpgaOverflow`] when the design exceeds DSP, LUT, or BRAM
    /// capacity — the explorer uses this to prune infeasible points.
    pub fn resources(
        &self,
        profile: &KernelProfile,
        t: &FpgaTuning,
    ) -> Result<FpgaResources, FpgaOverflow> {
        let lanes = u64::from(t.lanes());
        // One DSP retires one MAC (2 ops) per cycle; each lane implements
        // the whole per-element datapath.
        let dsp_per_lane = (profile.ops_per_element() / 2.0).ceil().max(1.0) as u64;
        let dsp = dsp_per_lane * lanes;
        let luts = 30_000
            + 120 * dsp
            + 15_000 * u64::from(t.compute_units.max(1))
            + 2_000 * u64::from(t.bram_ports.max(1));
        let fused = (profile.fused_onchip_bytes as f64 * t.fused_fraction.clamp(0.0, 1.0)) as u64;
        let buffers = fused + STAGING_BYTES_PER_CU * u64::from(t.compute_units.max(1));
        let buffers = if t.double_buffer {
            buffers * 2
        } else {
            buffers
        };
        // Partitioning replicates address decoders and fragments blocks.
        let bram_bytes =
            (buffers as f64 * (1.0 + 0.04 * f64::from(t.bram_ports.max(1) - 1))) as u64;

        let caps = [
            ("dsp", dsp, u64::from(self.spec.dsp_slices)),
            ("lut", luts, self.spec.logic_cells),
            ("bram", bram_bytes, self.spec.bram_bytes),
        ];
        for (resource, demanded, available) in caps {
            if demanded > available {
                return Err(FpgaOverflow {
                    resource,
                    demanded,
                    available,
                });
            }
        }
        let utilization = (dsp as f64 / f64::from(self.spec.dsp_slices))
            .max(luts as f64 / self.spec.logic_cells as f64)
            .max(bram_bytes as f64 / self.spec.bram_bytes as f64);
        Ok(FpgaResources {
            dsp: u32::try_from(dsp).unwrap_or(u32::MAX),
            luts,
            bram_bytes,
            utilization,
        })
    }

    /// Achieved clock in MHz after routing degradation at the given
    /// utilization (denser designs close timing at lower frequency).
    #[must_use]
    pub fn achieved_freq_mhz(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.spec.peak_freq_mhz * (1.0 - 0.35 * u.powf(1.5)).max(0.5)
    }

    /// Estimate latency, throughput, resources, and power of executing
    /// `profile` with implementation parameters `t`.
    ///
    /// Iterated kernels stream through the datapath without per-iteration
    /// host overhead (state stays on chip) — the FPGA's structural
    /// advantage over GPU launch-bound execution.
    ///
    /// # Errors
    /// Returns [`FpgaOverflow`] when the design does not fit.
    pub fn estimate(
        &self,
        profile: &KernelProfile,
        t: &FpgaTuning,
    ) -> Result<Estimate, FpgaOverflow> {
        let resources = self.resources(profile, t)?;
        let freq_mhz = self.achieved_freq_mhz(resources.utilization);
        let cycles_per_ms = freq_mhz * 1_000.0;

        // Lanes actually fed with data: BRAM ports bound the on-chip
        // bandwidth; operator affinity then scales the whole datapath's
        // efficiency (LUT-friendly operator mixes pipeline tighter than
        // the generic-II assumption, float-heavy mixes looser). Affinity
        // is clamped to its documented [0.5, 2.0] range — a hand-built
        // profile with affinity 0 would otherwise divide by zero below
        // (identity for analyzed profiles, which stay in range).
        let fed_lanes = f64::from(t.lanes()).min(f64::from(t.bram_ports.max(1)) * ELEMS_PER_PORT)
            * profile.fpga_affinity.clamp(0.5, 2.0);

        let elements = profile.elements as f64;
        let per_iter_cycles = if t.pipelined {
            // II = 1 pipeline: one element per lane per cycle.
            elements / fed_lanes
        } else {
            // Unpipelined: each element serializes its dependency chain.
            let dep = (profile.pipeline_depth as f64).clamp(2.0, 6.0);
            elements * dep / fed_lanes
        };
        let fill_cycles = profile.pipeline_depth as f64 + profile.ops_per_element();

        let iters = profile.iterations as f64;
        let t_compute = (fill_cycles + per_iter_cycles * iters) / cycles_per_ms;

        // Off-chip traffic paid once per request (resident working set).
        let f = t.fused_fraction.clamp(0.0, 1.0);
        let bytes =
            profile.unfused_bytes as f64 - (profile.unfused_bytes - profile.min_bytes) as f64 * f;
        let t_mem = bytes / (self.spec.mem_bandwidth_gbs * 1e6);

        let latency_ms = HOST_OVERHEAD_MS
            + if t.double_buffer {
                t_compute.max(t_mem)
            } else {
                t_compute + t_mem
            };
        // Double buffering lets the next request's transfers overlap this
        // request's compute.
        let service_ms = if t.double_buffer {
            t_compute.max(t_mem)
        } else {
            latency_ms
        };

        let activity = if t.pipelined { 0.75 } else { 0.45 };
        // Dynamic power grows superlinearly with utilization: denser
        // designs route through longer, higher-capacitance wires [51].
        // This is what puts smaller/slower designs on the energy-efficient
        // end of the Pareto frontier (Fig. 1(c)).
        let active_power_w = self.spec.static_power_w
            + (self.spec.peak_power_w - self.spec.static_power_w)
                * resources.utilization.powf(1.35)
                * activity
                * (freq_mhz / self.spec.peak_freq_mhz);

        Ok(Estimate {
            latency_ms,
            service_ms,
            batch: 1,
            active_power_w,
            // Idle power of a *configured* FPGA is its static power plus
            // clock-tree leakage of the loaded design.
            idle_power_w: self.spec.static_power_w
                + 0.1 * (self.spec.peak_power_w - self.spec.static_power_w) * resources.utilization,
            resources: Some(resources),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use poly_ir::{KernelBuilder, OpFunc, PatternKind, Shape};

    fn lstm_like() -> KernelProfile {
        KernelBuilder::new("lstm")
            .pattern("m", PatternKind::Map, Shape::d2(1024, 256), &[OpFunc::Mac])
            .pattern(
                "r",
                PatternKind::Reduce,
                Shape::d2(1024, 256),
                &[OpFunc::Add],
            )
            .chain()
            .iterations(1500)
            .build()
            .unwrap()
            .profile()
    }

    #[test]
    fn more_lanes_cut_latency_and_raise_power() {
        let fpga = catalog::xilinx_7v3();
        let p = lstm_like();
        let small = fpga
            .estimate(
                &p,
                &FpgaTuning {
                    unroll: 2,
                    bram_ports: 2,
                    ..FpgaTuning::default()
                },
            )
            .unwrap();
        let big = fpga
            .estimate(
                &p,
                &FpgaTuning {
                    unroll: 32,
                    bram_ports: 16,
                    compute_units: 2,
                    ..FpgaTuning::default()
                },
            )
            .unwrap();
        assert!(big.latency_ms < small.latency_ms);
        assert!(big.active_power_w > small.active_power_w);
    }

    #[test]
    fn oversized_design_overflows() {
        let fpga = catalog::xilinx_zcu102();
        // Heavy custom op: large per-lane DSP demand.
        let p = KernelBuilder::new("conv")
            .pattern(
                "c",
                PatternKind::Map,
                Shape::d2(512, 512),
                &[OpFunc::custom("conv", 400)],
            )
            .build()
            .unwrap()
            .profile();
        let err = fpga
            .estimate(
                &p,
                &FpgaTuning {
                    unroll: 64,
                    compute_units: 8,
                    ..FpgaTuning::default()
                },
            )
            .unwrap_err();
        assert_eq!(err.resource, "dsp");
        assert!(err.demanded > err.available);
    }

    #[test]
    fn pipelining_beats_unpipelined() {
        let fpga = catalog::xilinx_7v3();
        let p = lstm_like();
        let base = FpgaTuning {
            unroll: 8,
            bram_ports: 4,
            ..FpgaTuning::default()
        };
        let piped = fpga.estimate(&p, &base).unwrap();
        let unpiped = fpga
            .estimate(
                &p,
                &FpgaTuning {
                    pipelined: false,
                    ..base
                },
            )
            .unwrap();
        assert!(piped.latency_ms < unpiped.latency_ms);
    }

    #[test]
    fn double_buffer_raises_throughput() {
        let fpga = catalog::intel_arria10();
        let p = lstm_like();
        let base = FpgaTuning {
            unroll: 8,
            bram_ports: 8,
            ..FpgaTuning::default()
        };
        let plain = fpga.estimate(&p, &base).unwrap();
        let dbuf = fpga
            .estimate(
                &p,
                &FpgaTuning {
                    double_buffer: true,
                    ..base
                },
            )
            .unwrap();
        assert!(dbuf.service_ms <= plain.service_ms);
    }

    #[test]
    fn no_per_iteration_overhead_unlike_gpu() {
        let fpga = catalog::xilinx_7v3();
        let one = KernelBuilder::new("k")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap()
            .profile();
        let many = KernelBuilder::new("k")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .iterations(1000)
            .build()
            .unwrap()
            .profile();
        let tun = FpgaTuning {
            unroll: 8,
            bram_ports: 4,
            ..FpgaTuning::default()
        };
        let e1 = fpga.estimate(&one, &tun).unwrap();
        let e1000 = fpga.estimate(&many, &tun).unwrap();
        // Latency grows with compute, but without a 1000× overhead term the
        // growth is bounded by the pure compute ratio.
        assert!(e1000.latency_ms < e1.latency_ms * 1000.0);
    }

    #[test]
    fn power_proportional_to_utilization() {
        let fpga = catalog::xilinx_7v3();
        let p = lstm_like();
        let mut last_util = 0.0;
        let mut last_power = 0.0;
        for unroll in [1, 4, 16, 64] {
            let e = fpga
                .estimate(
                    &p,
                    &FpgaTuning {
                        unroll,
                        bram_ports: 8,
                        ..FpgaTuning::default()
                    },
                )
                .unwrap();
            let util = e.resources.unwrap().utilization;
            assert!(util >= last_util);
            assert!(e.active_power_w >= last_power);
            last_util = util;
            last_power = e.active_power_w;
        }
    }

    #[test]
    fn routing_degrades_clock_with_utilization() {
        let fpga = catalog::xilinx_7v3();
        assert!(fpga.achieved_freq_mhz(0.9) < fpga.achieved_freq_mhz(0.1));
        assert!(fpga.achieved_freq_mhz(1.0) >= fpga.spec().peak_freq_mhz * 0.5);
    }

    #[test]
    fn idle_power_far_below_gpu() {
        let fpga = catalog::xilinx_7v3();
        let gpu = catalog::amd_w9100();
        let p = lstm_like();
        let e = fpga
            .estimate(
                &p,
                &FpgaTuning {
                    unroll: 8,
                    bram_ports: 4,
                    ..FpgaTuning::default()
                },
            )
            .unwrap();
        assert!(e.idle_power_w < gpu.spec().idle_power_w / 2.0);
    }

    #[test]
    fn overflow_display_is_informative() {
        let err = FpgaOverflow {
            resource: "bram",
            demanded: 100,
            available: 50,
        };
        let s = err.to_string();
        assert!(s.contains("bram") && s.contains("100") && s.contains("50"));
    }
}
