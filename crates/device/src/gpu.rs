use crate::{DvfsLevel, Estimate, GpuSpec};
use poly_ir::{KernelProfile, PatternKind};

/// Tunable implementation parameters of a GPU kernel — the aggregate
/// effect of the per-pattern knobs of Table I (work-group size, loop
/// unrolling, memory coalescing, scratchpad memory, software pipelining)
/// plus the batching and DVFS dimensions the runtime controls.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuTuning {
    /// OpenCL work-group size (threads per group); the model's sweet spot
    /// is 256, matching common practice.
    pub workgroup_size: u32,
    /// Loop unroll factor (instruction-level parallelism).
    pub unroll: u32,
    /// Whether irregular (gather/scatter) accesses were remapped to be
    /// coalesced (Fig. 5(a) lines 2–3).
    pub coalesced: bool,
    /// Whether `__local` scratchpad staging is used for reused data.
    pub scratchpad: bool,
    /// Fraction of inter-pattern traffic kept on chip by fusion (global
    /// optimization), in `\[0, 1\]`.
    pub fused_fraction: f64,
    /// Requests launched together in one batch.
    pub batch: u32,
    /// DVFS operating point.
    pub dvfs: DvfsLevel,
}

impl Default for GpuTuning {
    fn default() -> Self {
        Self {
            workgroup_size: 256,
            unroll: 1,
            coalesced: false,
            scratchpad: false,
            fused_fraction: 0.0,
            batch: 1,
            dvfs: DvfsLevel::Nominal,
        }
    }
}

impl GpuTuning {
    /// Short key used in design-space dumps, e.g. `wg256_u4_cba_b8_nominal`.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "wg{}_u{}_{}{}{}_f{:.0}_b{}_{}",
            self.workgroup_size,
            self.unroll,
            if self.coalesced { "c" } else { "-" },
            if self.scratchpad { "s" } else { "-" },
            "", // reserved
            self.fused_fraction * 100.0,
            self.batch,
            self.dvfs
        )
    }
}

/// Analytical GPU performance and power model in the spirit of Hong & Kim
/// \[49\] and Harmonia \[18\]: execution time is the maximum of a compute
/// roofline and a memory roofline, scaled by occupancy- and ILP-driven
/// efficiency terms; power interpolates between idle and peak board power
/// with the achieved utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    spec: GpuSpec,
}

/// Threads the device must have in flight per core to hide memory and
/// pipeline latency (8 is typical for GCN/Kepler-class parts).
const LATENCY_HIDING: f64 = 8.0;

impl GpuModel {
    /// Wrap a GPU specification in the analytical model.
    #[must_use]
    pub fn new(spec: GpuSpec) -> Self {
        Self { spec }
    }

    /// The wrapped specification.
    #[must_use]
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Estimate latency, throughput, and power of executing `profile` with
    /// implementation parameters `t`.
    ///
    /// The estimate covers a whole batch of `t.batch` requests: sequential
    /// kernel iterations each pay a launch/dispatch overhead (this is what
    /// makes small recurrent kernels latency-bound on GPUs), while batching
    /// multiplies per-iteration parallel work and so amortizes both the
    /// overhead and the occupancy shortfall.
    #[must_use]
    pub fn estimate(&self, profile: &KernelProfile, t: &GpuTuning) -> Estimate {
        let batch = f64::from(t.batch.max(1));
        let freq = t.dvfs.freq_scale();

        // --- efficiency terms ---------------------------------------------
        let concurrency = profile.max_data_parallelism as f64 * batch;
        let needed = f64::from(self.spec.cores) * LATENCY_HIDING;
        let occupancy = (concurrency / needed).min(1.0);

        // Work-group sizing: quadratic penalty away from 256 threads.
        let wg = f64::from(t.workgroup_size.max(1));
        let wg_eff = 1.0 - 0.05 * (wg.log2() - 8.0).abs();
        let wg_eff = wg_eff.clamp(0.6, 1.0);

        // Unrolling buys ILP until register pressure bites at 16.
        let unroll_eff = match t.unroll {
            0 | 1 => 0.62,
            2 => 0.74,
            4 => 0.86,
            8 => 1.0,
            _ => 0.90,
        };

        // Scratchpad staging helps stencil/regular reuse compute efficiency.
        let has_stencil = profile
            .pattern_kinds
            .iter()
            .any(|k| matches!(k, PatternKind::Stencil { .. }));
        let scratch_eff = if t.scratchpad && has_stencil {
            1.15
        } else {
            1.0
        };

        let compute_eff = (occupancy * wg_eff * unroll_eff * scratch_eff).clamp(0.005, 1.0);

        // --- memory terms ---------------------------------------------------
        let has_irregular = profile.pattern_kinds.iter().any(PatternKind::is_irregular);
        let coalesce = if has_irregular {
            if t.coalesced {
                0.9
            } else {
                0.35
            }
        } else {
            1.0
        };
        // Off-chip traffic is paid once per request: iterated kernels keep
        // their working set resident in device memory across iterations.
        let bytes = self.traffic_bytes(profile, t.fused_fraction) * batch;

        // --- rooflines -------------------------------------------------------
        let flops_per_iter = profile.flops as f64 * batch;
        // Gflop/s == flops/µs; convert to ms via 1e6 flops per Gflop·ms.
        let t_compute = flops_per_iter / (self.spec.peak_gflops() * compute_eff * freq * 1e6);
        let t_mem = bytes / (self.spec.mem_bandwidth_gbs * coalesce * 1e6);

        // --- iteration loop ---------------------------------------------------
        // A hand-built profile may carry zero iterations; the dispatch
        // discount below would otherwise under-charge the cold launch.
        // Identity for every analyzed profile (iterations >= 1).
        let iters = (profile.iterations as f64).max(1.0);
        // Successive launches of the same kernel pipeline in the driver:
        // the first pays the full overhead, the rest a reduced dispatch fee
        // (command-queue batching keeps the GPU fed at ~10% of a cold
        // launch per iteration).
        let dispatch = self.spec.launch_overhead_ms * (1.0 + 0.1 * (iters - 1.0));
        let latency_ms = dispatch + t_mem + t_compute * iters;
        let service_ms = latency_ms / batch;

        // --- power ------------------------------------------------------------
        let compute_total = t_compute * iters;
        let mem_intensity = if compute_total + t_mem > 0.0 {
            (t_mem / (compute_total + t_mem)).min(1.0)
        } else {
            0.0
        };
        let activity = (0.30 + 0.55 * occupancy + 0.15 * mem_intensity).min(1.0);
        let dynamic =
            (self.spec.peak_power_w - self.spec.idle_power_w) * activity * t.dvfs.power_scale();
        let active_power_w = self.spec.idle_power_w + dynamic;

        Estimate {
            latency_ms,
            service_ms,
            batch: t.batch.max(1),
            active_power_w,
            idle_power_w: self.spec.idle_power_w,
            resources: None,
        }
    }

    /// Off-chip traffic per iteration after applying fusion.
    fn traffic_bytes(&self, profile: &KernelProfile, fused_fraction: f64) -> f64 {
        let f = fused_fraction.clamp(0.0, 1.0);
        let min = profile.min_bytes as f64;
        let max = profile.unfused_bytes as f64;
        max - (max - min) * f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use poly_ir::{KernelBuilder, OpFunc, PatternKind, Shape};

    fn lstm_like() -> KernelProfile {
        KernelBuilder::new("lstm")
            .pattern("m", PatternKind::Map, Shape::d2(1024, 256), &[OpFunc::Mac])
            .pattern(
                "r",
                PatternKind::Reduce,
                Shape::d2(1024, 256),
                &[OpFunc::Add],
            )
            .pattern(
                "act",
                PatternKind::pipeline(),
                Shape::d1(1024),
                &[OpFunc::Sigmoid, OpFunc::Tanh],
            )
            .chain()
            .iterations(1500)
            .build()
            .unwrap()
            .profile()
    }

    #[test]
    fn batching_reduces_service_time() {
        let gpu = catalog::amd_w9100();
        let p = lstm_like();
        let b1 = gpu.estimate(&p, &GpuTuning::default());
        let b16 = gpu.estimate(
            &p,
            &GpuTuning {
                batch: 16,
                ..GpuTuning::default()
            },
        );
        assert!(b16.service_ms < b1.service_ms, "{b16:?} vs {b1:?}");
        // ...but batch completion latency grows.
        assert!(b16.latency_ms >= b1.latency_ms);
    }

    #[test]
    fn iterations_dominate_small_kernel_latency() {
        let gpu = catalog::amd_w9100();
        let one = KernelBuilder::new("k")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .build()
            .unwrap()
            .profile();
        let many = KernelBuilder::new("k")
            .pattern("m", PatternKind::Map, Shape::d1(1024), &[OpFunc::Mac])
            .iterations(1000)
            .build()
            .unwrap()
            .profile();
        let e1 = gpu.estimate(&one, &GpuTuning::default());
        let e2 = gpu.estimate(&many, &GpuTuning::default());
        assert!(e2.latency_ms > 50.0 * e1.latency_ms);
    }

    #[test]
    fn fusion_reduces_memory_bound_latency() {
        let gpu = catalog::amd_w9100();
        // Memory-bound kernel: cheap op over a big collection.
        let p = KernelBuilder::new("memcpyish")
            .pattern("a", PatternKind::Map, Shape::d2(4096, 1024), &[OpFunc::Add])
            .pattern("b", PatternKind::Map, Shape::d2(4096, 1024), &[OpFunc::Add])
            .chain()
            .build()
            .unwrap()
            .profile();
        let unfused = gpu.estimate(&p, &GpuTuning::default());
        let fused = gpu.estimate(
            &p,
            &GpuTuning {
                fused_fraction: 1.0,
                ..GpuTuning::default()
            },
        );
        assert!(fused.latency_ms < unfused.latency_ms);
    }

    #[test]
    fn coalescing_helps_irregular_kernels_only() {
        let gpu = catalog::nvidia_k20();
        let irregular = KernelBuilder::new("g")
            .pattern("g", PatternKind::Gather, Shape::d2(4096, 512), &[])
            .build()
            .unwrap()
            .profile();
        let base = gpu.estimate(&irregular, &GpuTuning::default());
        let coal = gpu.estimate(
            &irregular,
            &GpuTuning {
                coalesced: true,
                ..GpuTuning::default()
            },
        );
        assert!(coal.latency_ms < base.latency_ms);

        let regular = KernelBuilder::new("m")
            .pattern("m", PatternKind::Map, Shape::d2(4096, 512), &[OpFunc::Add])
            .build()
            .unwrap()
            .profile();
        let base = gpu.estimate(&regular, &GpuTuning::default());
        let coal = gpu.estimate(
            &regular,
            &GpuTuning {
                coalesced: true,
                ..GpuTuning::default()
            },
        );
        assert!((coal.latency_ms - base.latency_ms).abs() < 1e-12);
    }

    #[test]
    fn dvfs_low_cuts_power_and_speed() {
        let gpu = catalog::amd_w9100();
        let p = lstm_like();
        let nom = gpu.estimate(&p, &GpuTuning::default());
        let low = gpu.estimate(
            &p,
            &GpuTuning {
                dvfs: DvfsLevel::Low,
                ..GpuTuning::default()
            },
        );
        assert!(low.active_power_w < nom.active_power_w);
        assert!(low.latency_ms > nom.latency_ms);
    }

    #[test]
    fn power_stays_within_board_limits() {
        let gpu = catalog::amd_w9100();
        let p = lstm_like();
        for batch in [1, 4, 32] {
            for dvfs in DvfsLevel::ALL {
                let e = gpu.estimate(
                    &p,
                    &GpuTuning {
                        batch,
                        dvfs,
                        ..GpuTuning::default()
                    },
                );
                assert!(e.active_power_w >= e.idle_power_w);
                // Boost may exceed nominal peak slightly, never wildly.
                assert!(e.active_power_w <= gpu.spec().peak_power_w * 1.4);
            }
        }
    }

    #[test]
    fn unroll_sweet_spot_at_eight() {
        let gpu = catalog::amd_w9100();
        let p = lstm_like();
        let lat = |u: u32| {
            gpu.estimate(
                &p,
                &GpuTuning {
                    unroll: u,
                    ..GpuTuning::default()
                },
            )
            .latency_ms
        };
        assert!(lat(8) < lat(1));
        assert!(lat(8) < lat(16));
    }
}
