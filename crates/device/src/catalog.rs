//! Named accelerator models for the devices of Tables IV and V.
//!
//! Figures quoted directly from the paper: core/DSP counts, peak
//! frequencies, memory sizes, peak power, and prices. Figures the tables
//! omit but the analytical models need (memory bandwidth, idle/static
//! power, launch overhead, reconfiguration time) use the vendors' published
//! numbers for the same boards.

use crate::{FpgaModel, FpgaSpec, GpuModel, GpuSpec};

/// AMD FirePro W9100 (Table IV): 2816 cores @ 930 MHz, 32 GB, 270 W, $4999.
#[must_use]
pub fn amd_w9100() -> GpuModel {
    GpuModel::new(GpuSpec {
        name: "AMD FirePro W9100".into(),
        cores: 2816,
        freq_ghz: 0.930,
        mem_bandwidth_gbs: 320.0,
        mem_gb: 32.0,
        peak_power_w: 270.0,
        idle_power_w: 42.0,
        launch_overhead_ms: 0.022,
        price_usd: 4999.0,
    })
}

/// NVIDIA Tesla K20 (Table IV): 2496 cores @ 706 MHz, 5 GB, 225 W, $2999.
#[must_use]
pub fn nvidia_k20() -> GpuModel {
    GpuModel::new(GpuSpec {
        name: "NVIDIA Tesla K20".into(),
        cores: 2496,
        freq_ghz: 0.706,
        mem_bandwidth_gbs: 208.0,
        mem_gb: 5.0,
        peak_power_w: 225.0,
        idle_power_w: 25.0,
        launch_overhead_ms: 0.018,
        price_usd: 2999.0,
    })
}

/// Xilinx Virtex7-690t ADM-PCIE-7V3 (Table V): 470 MHz, 693 K cells,
/// 6.5 MB BRAM, 3600 DSPs, 45 W, $3200.
#[must_use]
pub fn xilinx_7v3() -> FpgaModel {
    FpgaModel::new(FpgaSpec {
        name: "Xilinx Virtex7-690t ADM-PCIE-7V3".into(),
        peak_freq_mhz: 470.0,
        logic_cells: 693_000,
        bram_bytes: (6.5 * 1024.0 * 1024.0) as u64,
        dsp_slices: 3600,
        mem_bandwidth_gbs: 12.8,
        peak_power_w: 45.0,
        static_power_w: 4.5,
        reconfig_ms: 220.0,
        price_usd: 3200.0,
    })
}

/// Xilinx Zynq UltraScale+ ZCU102 (Table V): 333 MHz, 600 K cells,
/// 4.0 MB BRAM, 2520 DSPs, 30 W, $2495.
#[must_use]
pub fn xilinx_zcu102() -> FpgaModel {
    FpgaModel::new(FpgaSpec {
        name: "Xilinx Zynq UltraScale+ ZCU102".into(),
        peak_freq_mhz: 333.0,
        logic_cells: 600_000,
        bram_bytes: 4 * 1024 * 1024,
        dsp_slices: 2520,
        mem_bandwidth_gbs: 19.2,
        peak_power_w: 30.0,
        static_power_w: 3.0,
        reconfig_ms: 180.0,
        price_usd: 2495.0,
    })
}

/// Intel Arria 10 GX115 (Table V): 800 MHz, 8.2 MB BRAM, 1518 DSPs, 65 W,
/// $4495.
///
/// Table V prints "43K" logic cells, which contradicts Intel's datasheet
/// for the GX 1150 die (≈1150 K LEs); we use 1 150 000 so the resource
/// model is not artificially starved by a typo.
#[must_use]
pub fn intel_arria10() -> FpgaModel {
    FpgaModel::new(FpgaSpec {
        name: "Intel Arria 10 GX115".into(),
        peak_freq_mhz: 800.0,
        logic_cells: 1_150_000,
        bram_bytes: (8.2 * 1024.0 * 1024.0) as u64,
        dsp_slices: 1518,
        mem_bandwidth_gbs: 34.1,
        peak_power_w: 65.0,
        static_power_w: 6.5,
        reconfig_ms: 250.0,
        price_usd: 4495.0,
    })
}

/// All GPUs of Table IV.
#[must_use]
pub fn all_gpus() -> Vec<GpuModel> {
    vec![amd_w9100(), nvidia_k20()]
}

/// All FPGAs of Table V.
#[must_use]
pub fn all_fpgas() -> Vec<FpgaModel> {
    vec![xilinx_7v3(), xilinx_zcu102(), intel_arria10()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_numbers() {
        let w = amd_w9100();
        assert_eq!(w.spec().cores, 2816);
        assert_eq!(w.spec().peak_power_w, 270.0);
        let k = nvidia_k20();
        assert_eq!(k.spec().cores, 2496);
        assert_eq!(k.spec().price_usd, 2999.0);
    }

    #[test]
    fn table_v_numbers() {
        let v7 = xilinx_7v3();
        assert_eq!(v7.spec().dsp_slices, 3600);
        assert_eq!(v7.spec().peak_power_w, 45.0);
        let z = xilinx_zcu102();
        assert_eq!(z.spec().peak_freq_mhz, 333.0);
        let a = intel_arria10();
        assert_eq!(a.spec().dsp_slices, 1518);
        assert_eq!(a.spec().price_usd, 4495.0);
    }

    #[test]
    fn catalogs_nonempty() {
        assert_eq!(all_gpus().len(), 2);
        assert_eq!(all_fpgas().len(), 3);
    }
}
