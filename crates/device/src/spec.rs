/// Specification of a GPU accelerator (Table IV of the paper, extended with
/// the memory bandwidth and idle power the analytical model needs).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"AMD FirePro W9100"`.
    pub name: String,
    /// Shader cores (stream processors / CUDA cores).
    pub cores: u32,
    /// Peak core frequency in GHz.
    pub freq_ghz: f64,
    /// Off-chip memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Device memory capacity in GB.
    pub mem_gb: f64,
    /// Board power at full load in watts.
    pub peak_power_w: f64,
    /// Board power when idle (clocks parked) in watts.
    pub idle_power_w: f64,
    /// Kernel launch overhead in milliseconds (driver + queue).
    pub launch_overhead_ms: f64,
    /// List price in USD (Table IV), used by the TCO model.
    pub price_usd: f64,
}

impl GpuSpec {
    /// Peak single-precision throughput in Gflop/s (2 flops per core per
    /// cycle — one FMA).
    #[must_use]
    pub fn peak_gflops(&self) -> f64 {
        f64::from(self.cores) * 2.0 * self.freq_ghz
    }
}

/// Specification of an FPGA accelerator (Table V of the paper, extended
/// with board DRAM bandwidth, static power and reconfiguration time).
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaSpec {
    /// Marketing name, e.g. `"Xilinx Virtex7-690t ADM-PCIE-7V3"`.
    pub name: String,
    /// Peak achievable clock in MHz (before routing degradation).
    pub peak_freq_mhz: f64,
    /// Logic cells (LUT-equivalent) available.
    pub logic_cells: u64,
    /// On-chip BRAM capacity in bytes.
    pub bram_bytes: u64,
    /// DSP slices available.
    pub dsp_slices: u32,
    /// Board DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Board power at full utilization in watts.
    pub peak_power_w: f64,
    /// Static (configured but idle) power in watts.
    pub static_power_w: f64,
    /// Time to load a new bitstream in milliseconds — the cost the runtime
    /// pays when it swaps a kernel implementation on this device.
    pub reconfig_ms: f64,
    /// List price in USD (Table V), used by the TCO model.
    pub price_usd: f64,
}

impl FpgaSpec {
    /// Peak arithmetic throughput in Gflop/s if every DSP slice retires one
    /// MAC (2 flops) per cycle at the peak clock.
    #[must_use]
    pub fn peak_gflops(&self) -> f64 {
        f64::from(self.dsp_slices) * 2.0 * self.peak_freq_mhz / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use crate::catalog;

    #[test]
    fn gpu_peak_flops_matches_cores_times_freq() {
        let g = crate::catalog::amd_w9100();
        let spec = g.spec();
        assert!((spec.peak_gflops() - f64::from(spec.cores) * 2.0 * spec.freq_ghz).abs() < 1e-9);
        // W9100 is a ~5.2 Tflop part.
        assert!(spec.peak_gflops() > 5000.0 && spec.peak_gflops() < 5500.0);
    }

    #[test]
    fn fpga_peak_flops_is_positive_and_below_gpu() {
        let f = catalog::xilinx_7v3();
        let g = catalog::amd_w9100();
        assert!(f.spec().peak_gflops() > 0.0);
        assert!(f.spec().peak_gflops() < g.spec().peak_gflops());
    }

    #[test]
    fn fpga_static_power_below_peak() {
        for f in [
            catalog::xilinx_7v3(),
            catalog::xilinx_zcu102(),
            catalog::intel_arria10(),
        ] {
            assert!(f.spec().static_power_w < f.spec().peak_power_w);
        }
    }
}
