use std::fmt;

/// The two accelerator classes Poly schedules across.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceKind {
    /// Graphics processing unit — wide SIMD, high idle power, batches well.
    Gpu,
    /// Field-programmable gate array — custom pipelines, low idle power,
    /// requires reconfiguration to change implementation.
    Fpga,
}

impl DeviceKind {
    /// Lowercase name (`"gpu"` / `"fpga"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Gpu => "gpu",
            DeviceKind::Fpga => "fpga",
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(DeviceKind::Gpu.to_string(), "gpu");
        assert_eq!(DeviceKind::Fpga.to_string(), "fpga");
    }

    #[test]
    fn orderable_for_map_keys() {
        assert!(DeviceKind::Gpu < DeviceKind::Fpga);
    }
}
