/// PCIe interconnect model supplying the inter-kernel transfer time
/// `T(e_ij)` of the scheduler's Eq. 2.
///
/// Transfers between kernels co-located on the same device are free (data
/// stays in device memory); cross-device transfers pay a fixed DMA setup
/// latency plus a bandwidth term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieLink {
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Per-transfer setup latency in milliseconds (DMA descriptor, driver).
    pub latency_ms: f64,
}

impl PcieLink {
    /// PCIe 3.0 ×16 as used by the paper's prototype server: ~12 GB/s
    /// sustained, ~20 µs setup.
    #[must_use]
    pub fn gen3_x16() -> Self {
        Self {
            bandwidth_gbs: 12.0,
            latency_ms: 0.02,
        }
    }

    /// Transfer time for `bytes` across the link, in milliseconds.
    ///
    /// ```rust
    /// let link = poly_device::PcieLink::gen3_x16();
    /// let t = link.transfer_ms(12_000_000); // 12 MB
    /// assert!(t > 1.0 && t < 1.1);
    /// ```
    #[must_use]
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_ms + bytes as f64 / (self.bandwidth_gbs * 1e6)
    }
}

impl Default for PcieLink {
    fn default() -> Self {
        Self::gen3_x16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(PcieLink::gen3_x16().transfer_ms(0), 0.0);
    }

    #[test]
    fn transfer_scales_linearly_beyond_setup() {
        let link = PcieLink::gen3_x16();
        let t1 = link.transfer_ms(1 << 20);
        let t2 = link.transfer_ms(2 << 20);
        assert!(t2 > t1);
        assert!(((t2 - link.latency_ms) / (t1 - link.latency_ms) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn small_transfers_dominated_by_setup() {
        let link = PcieLink::gen3_x16();
        let t = link.transfer_ms(64);
        assert!(t < link.latency_ms * 1.01);
    }
}
