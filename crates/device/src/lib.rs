//! # poly-device — analytical device models and the accelerator catalog
//!
//! The paper measures real GPUs and FPGAs; this crate is the simulated
//! replacement (see DESIGN.md §2). It provides:
//!
//! - device specifications for the accelerators of Tables IV and V
//!   ([`catalog`]),
//! - a Hong&Kim-style analytical **GPU model** ([`GpuModel`]): roofline of
//!   compute vs. memory time, occupancy-driven efficiency, batching, and
//!   DVFS power states,
//! - a FlexCL-style analytical **FPGA model** ([`FpgaModel`]): initiation-
//!   interval pipelining, LUT/BRAM/DSP resource accounting with routing-
//!   driven clock degradation, and power proportional to resource
//!   utilization,
//! - a **PCIe link model** ([`PcieLink`]) supplying the `T(e_ij)` transfer
//!   term of the scheduler's Eq. 2.
//!
//! The same models serve double duty, exactly as in the paper: the DSE uses
//! them to navigate the design space (Section IV-C) and the discrete-event
//! simulator uses them as the ground-truth "hardware".
//!
//! ## Example
//!
//! ```rust
//! use poly_device::{catalog, GpuTuning};
//! use poly_ir::{KernelBuilder, OpFunc, PatternKind, Shape};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = KernelBuilder::new("dot")
//!     .pattern("m", PatternKind::Map, Shape::d2(4096, 1024), &[OpFunc::Mac])
//!     .pattern("r", PatternKind::Reduce, Shape::d2(4096, 1024), &[OpFunc::Add])
//!     .chain()
//!     .build()?;
//! let gpu = catalog::amd_w9100();
//! let est = gpu.estimate(&kernel.profile(), &GpuTuning::default());
//! assert!(est.latency_ms > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod estimate;
mod fpga;
mod gpu;
mod kind;
mod pcie;
mod power;
mod size;
mod spec;

pub use estimate::Estimate;
pub use fpga::{FpgaModel, FpgaOverflow, FpgaResources, FpgaTuning};
pub use gpu::{GpuModel, GpuTuning};
pub use kind::DeviceKind;
pub use pcie::PcieLink;
pub use power::DvfsLevel;
pub use size::{size_scale, FPGA_FIXED_FRAC, GPU_FIXED_FRAC};
pub use spec::{FpgaSpec, GpuSpec};
