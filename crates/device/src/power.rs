use std::fmt;

/// GPU dynamic voltage/frequency scaling level.
///
/// The paper's runtime "boosts operating frequency of GPUs ... when the
/// load intensity is very high" and "reduces the GPU operating frequency"
/// at low load (Section VI-C). Power scales super-linearly with frequency
/// (`P ∝ f·V²`, with `V ∝ f` this is cubic; we use the conventional 2.5
/// exponent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum DvfsLevel {
    /// Power-save clocks (~60% of nominal frequency).
    Low,
    /// Nominal clocks.
    #[default]
    Nominal,
    /// Boost clocks (~112% of nominal frequency).
    Boost,
}

impl DvfsLevel {
    /// All levels in ascending frequency order.
    pub const ALL: [DvfsLevel; 3] = [DvfsLevel::Low, DvfsLevel::Nominal, DvfsLevel::Boost];

    /// Core/memory frequency multiplier relative to nominal.
    #[must_use]
    pub fn freq_scale(self) -> f64 {
        match self {
            DvfsLevel::Low => 0.60,
            DvfsLevel::Nominal => 1.0,
            DvfsLevel::Boost => 1.12,
        }
    }

    /// Dynamic-power multiplier relative to nominal (`freq_scale^2.5`).
    #[must_use]
    pub fn power_scale(self) -> f64 {
        self.freq_scale().powf(2.5)
    }
}

impl fmt::Display for DvfsLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DvfsLevel::Low => "low",
            DvfsLevel::Nominal => "nominal",
            DvfsLevel::Boost => "boost",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_saves_superlinear_power() {
        // At 60% frequency, dynamic power drops to ~28%.
        let p = DvfsLevel::Low.power_scale();
        assert!(p < DvfsLevel::Low.freq_scale());
        assert!((p - 0.6_f64.powf(2.5)).abs() < 1e-12);
    }

    #[test]
    fn boost_costs_superlinear_power() {
        assert!(DvfsLevel::Boost.power_scale() > DvfsLevel::Boost.freq_scale());
    }

    #[test]
    fn levels_are_ordered() {
        let f: Vec<f64> = DvfsLevel::ALL.iter().map(|l| l.freq_scale()).collect();
        assert!(f.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn nominal_is_identity() {
        assert_eq!(DvfsLevel::Nominal.freq_scale(), 1.0);
        assert_eq!(DvfsLevel::Nominal.power_scale(), 1.0);
    }
}
