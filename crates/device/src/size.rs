//! Input-size scaling of the analytical models.
//!
//! The catalog models are evaluated against one *nominal* kernel profile;
//! per-request inputs in an irregular workload deviate from it by a
//! relative factor (1.0 = nominal). Execution time does not scale purely
//! linearly with that factor: each platform has a fixed overhead share
//! that is size-independent — kernel launch/dispatch on the GPU, host
//! handoff and pipeline fill on the FPGA — while the remaining share
//! (memory traffic, iteration count) grows with the input.
//!
//! [`size_scale`] captures this with a two-term model,
//! `fixed + (1 - fixed) * size`, the standard serial-fraction shape.
//! The GPU's fixed share is large (dispatch overhead, occupancy ramp);
//! the FPGA's is small (a deep initiation-interval pipeline streams
//! elements, so time is nearly proportional to element count).

use crate::kind::DeviceKind;

/// Size-independent fraction of GPU execution time (launch/dispatch
/// overhead, occupancy ramp).
pub const GPU_FIXED_FRAC: f64 = 0.35;

/// Size-independent fraction of FPGA execution time (host handoff,
/// pipeline fill) — small, because pipelined streaming scales with the
/// element count.
pub const FPGA_FIXED_FRAC: f64 = 0.10;

/// Multiplier on nominal execution time (and dynamic energy) for a
/// request whose input is `size` × the nominal profile.
///
/// Exactly `1.0` for `size == 1.0` — nominal-size requests are
/// bit-identical to the unscaled models, so workloads without size
/// variation reproduce the unsized simulation exactly.
#[must_use]
pub fn size_scale(kind: DeviceKind, size: f64) -> f64 {
    // Non-finite sizes (NaN / ±inf from a degenerate sampler) fall back
    // to nominal rather than poisoning the latency estimate.
    if size == 1.0 || !size.is_finite() {
        return 1.0;
    }
    let fixed = match kind {
        DeviceKind::Gpu => GPU_FIXED_FRAC,
        DeviceKind::Fpga => FPGA_FIXED_FRAC,
    };
    fixed + (1.0 - fixed) * size.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_size_is_exact_identity() {
        assert_eq!(size_scale(DeviceKind::Gpu, 1.0).to_bits(), 1.0f64.to_bits());
        assert_eq!(
            size_scale(DeviceKind::Fpga, 1.0).to_bits(),
            1.0f64.to_bits()
        );
    }

    #[test]
    fn gpu_amortizes_small_inputs_better_than_fpga() {
        // Half-size input: GPU keeps more of its fixed overhead.
        assert!(size_scale(DeviceKind::Gpu, 0.5) > size_scale(DeviceKind::Fpga, 0.5));
        // Double-size input: FPGA grows closer to 2x.
        assert!(size_scale(DeviceKind::Fpga, 2.0) > size_scale(DeviceKind::Gpu, 2.0));
    }

    #[test]
    fn scale_is_monotone_and_floored() {
        assert!(size_scale(DeviceKind::Gpu, 4.0) > size_scale(DeviceKind::Gpu, 2.0));
        // Degenerate sizes clamp at the fixed fraction, never negative.
        assert_eq!(size_scale(DeviceKind::Gpu, -3.0), GPU_FIXED_FRAC);
        assert_eq!(size_scale(DeviceKind::Fpga, 0.0), FPGA_FIXED_FRAC);
    }

    #[test]
    fn non_finite_sizes_fall_back_to_nominal() {
        for kind in [DeviceKind::Gpu, DeviceKind::Fpga] {
            assert_eq!(size_scale(kind, f64::NAN).to_bits(), 1.0f64.to_bits());
            assert_eq!(size_scale(kind, f64::INFINITY).to_bits(), 1.0f64.to_bits());
            assert_eq!(
                size_scale(kind, f64::NEG_INFINITY).to_bits(),
                1.0f64.to_bits()
            );
        }
    }
}
