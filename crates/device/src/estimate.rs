use crate::FpgaResources;

/// Analytical prediction for one kernel implementation on one device.
///
/// All figures are *per kernel execution*: on the GPU that execution covers
/// `batch` requests launched together; on the FPGA a pipelined execution
/// streams requests with initiation interval [`service_ms`](Self::service_ms).
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// End-to-end latency of one execution in milliseconds (for a GPU batch
    /// this is the completion time of the whole batch; every request in the
    /// batch observes it).
    pub latency_ms: f64,
    /// Device-occupancy per request in milliseconds — the inverse of this
    /// implementation's sustainable throughput on one device.
    pub service_ms: f64,
    /// Requests served per execution (GPU batching; `1` on FPGAs).
    pub batch: u32,
    /// Average board power while executing, in watts.
    pub active_power_w: f64,
    /// Board power while configured but idle, in watts.
    pub idle_power_w: f64,
    /// FPGA resource usage (`None` for GPU implementations).
    pub resources: Option<FpgaResources>,
}

impl Estimate {
    /// Energy per request in millijoules: active power over the per-request
    /// service time.
    #[must_use]
    pub fn energy_per_request_mj(&self) -> f64 {
        self.active_power_w * self.service_ms
    }

    /// *Dynamic* energy per request in millijoules: the marginal energy the
    /// request adds on top of the idle power the device draws anyway,
    /// `(P_active − P_idle) × service`.
    ///
    /// This is the quantity the runtime's energy-efficiency step minimizes:
    /// in a continuously operating leaf node, idle power is paid regardless
    /// of the chosen implementation, so minimizing average node power at a
    /// given request rate is exactly minimizing dynamic energy per request.
    #[must_use]
    pub fn dynamic_energy_mj(&self) -> f64 {
        (self.active_power_w - self.idle_power_w).max(0.0) * self.service_ms
    }

    /// Sustainable throughput of one device running only this kernel, in
    /// requests per second.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        1000.0 / self.service_ms.max(1e-9)
    }

    /// Energy efficiency in requests per joule — the y-axis of Fig. 1(c).
    #[must_use]
    pub fn requests_per_joule(&self) -> f64 {
        1000.0 / self.energy_per_request_mj().max(1e-12)
    }

    /// Whether every figure is physically meaningful: finite and
    /// non-negative times and powers. The analytical models guarantee
    /// this for any input profile (including degenerate zero-op,
    /// zero-iteration ones — see the model edge-case guards); backends
    /// assert it before feeding an estimate into the DES clock.
    #[must_use]
    pub fn is_physical(&self) -> bool {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        ok(self.latency_ms)
            && ok(self.service_ms)
            && ok(self.active_power_w)
            && ok(self.idle_power_w)
            && self.batch >= 1
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lat {:.2} ms, svc {:.2} ms (batch {}), {:.1} W active / {:.1} W idle",
            self.latency_ms, self.service_ms, self.batch, self.active_power_w, self.idle_power_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> Estimate {
        Estimate {
            latency_ms: 40.0,
            service_ms: 10.0,
            batch: 4,
            active_power_w: 200.0,
            idle_power_w: 40.0,
            resources: None,
        }
    }

    #[test]
    fn energy_is_power_times_service() {
        assert!((est().energy_per_request_mj() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_inverse_service() {
        assert!((est().throughput_rps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn requests_per_joule_consistent() {
        let e = est();
        assert!((e.requests_per_joule() - 1000.0 / 2000.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_the_key_figures() {
        let s = est().to_string();
        assert!(s.contains("40.00 ms") && s.contains("batch 4") && s.contains("200.0 W"));
    }

    #[test]
    fn physicality_check_pins_the_boundaries() {
        assert!(est().is_physical());
        // Exactly-zero figures are physical (an idle estimate)...
        let zero = Estimate {
            latency_ms: 0.0,
            service_ms: 0.0,
            batch: 1,
            active_power_w: 0.0,
            idle_power_w: 0.0,
            resources: None,
        };
        assert!(zero.is_physical());
        // ...but negatives, NaNs, infinities, and batch 0 are not.
        for bad in [
            Estimate {
                latency_ms: -1e-12,
                ..zero.clone()
            },
            Estimate {
                service_ms: f64::NAN,
                ..zero.clone()
            },
            Estimate {
                active_power_w: f64::INFINITY,
                ..zero.clone()
            },
            Estimate {
                batch: 0,
                ..zero.clone()
            },
        ] {
            assert!(!bad.is_physical(), "{bad:?}");
        }
    }
}
