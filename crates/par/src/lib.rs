//! Dependency-free fork-join parallelism on `std::thread::scope`.
//!
//! The experiment pipeline is embarrassingly parallel at several levels
//! (independent simulations of a load sweep, independent kernels of a
//! design-space exploration, independent figures of the evaluation), but
//! the build environment cannot pull a thread-pool crate from a registry.
//! This crate provides the few fork-join primitives the workspace needs,
//! built only on the standard library.
//!
//! **Determinism contract:** results are collected *by input index*, never
//! by completion order, so for any pure `f` the output of [`par_map`] is
//! byte-identical to the serial `items.iter().map(f)` regardless of the
//! job count or thread scheduling. Work distribution (which worker claims
//! which index) is the only nondeterministic part, and it is unobservable
//! in the results.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count: `POLY_JOBS` if set to a positive integer,
/// otherwise the machine's available parallelism.
#[must_use]
pub fn jobs() -> usize {
    match std::env::var("POLY_JOBS") {
        Ok(s) => s.trim().parse().ok().filter(|&n| n >= 1),
        Err(_) => None,
    }
    .unwrap_or_else(default_jobs)
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Apply `f` to every item of `items` using up to `jobs` worker threads
/// and return the results **in input order**.
///
/// `f` receives `(index, &item)`. With `jobs <= 1` (or fewer than two
/// items) everything runs inline on the caller's thread — the serial and
/// parallel paths produce identical results for pure `f`.
///
/// # Panics
/// If `f` panics for any item, the panic propagates to the caller once
/// the scope joins (matching the serial behaviour of the first panicking
/// call, except that later items may already have started).
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.min(items.len()).max(1);
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    {
        let slots = &slots;
        let next = &next;
        let f = &f;
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let r = f(i, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
    }
    slots
        .iter_mut()
        .map(|m| {
            m.get_mut()
                .expect("result slot poisoned")
                .take()
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Like [`par_map`] but consumes the items, so `f` can take ownership
/// (e.g. drive a stateful `System` per task and return it).
///
/// # Panics
/// Propagates panics from `f` like [`par_map`].
pub fn par_map_owned<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let jobs = jobs.min(items.len()).max(1);
    if jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<R>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    {
        let slots = &slots;
        let inputs = &inputs;
        let next = &next;
        let f = &f;
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = inputs.get(i) else { break };
                    let item = slot
                        .lock()
                        .expect("input slot poisoned")
                        .take()
                        .expect("each index claimed once");
                    let r = f(i, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
    }
    slots
        .iter_mut()
        .map(|m| {
            m.get_mut()
                .expect("result slot poisoned")
                .take()
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Like [`par_map`] but gives `f` **mutable** access to each item in
/// place (e.g. step a fleet of simulator nodes, one worker per node, and
/// collect each node's interval stats).
///
/// # Panics
/// Propagates panics from `f` like [`par_map`].
pub fn par_map_mut<T, R, F>(jobs: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let jobs = jobs.min(items.len()).max(1);
    if jobs <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let inputs: Vec<Mutex<Option<&mut T>>> =
        items.iter_mut().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<R>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    {
        let slots = &slots;
        let inputs = &inputs;
        let next = &next;
        let f = &f;
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = inputs.get(i) else { break };
                    let item = slot
                        .lock()
                        .expect("input slot poisoned")
                        .take()
                        .expect("each index claimed once");
                    let r = f(i, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
    }
    slots
        .iter_mut()
        .map(|m| {
            m.get_mut()
                .expect("result slot poisoned")
                .take()
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_for_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let par = par_map(jobs, &items, |_, &x| x * x + 1);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn indices_line_up_with_items() {
        let items: Vec<usize> = (0..50).collect();
        let out = par_map(4, &items, |i, &x| {
            assert_eq!(i, x);
            i
        });
        assert_eq!(out, items);
    }

    #[test]
    fn owned_variant_moves_items_through() {
        let items: Vec<String> = (0..20).map(|i| format!("s{i}")).collect();
        let expect = items.clone();
        let out = par_map_owned(4, items, |i, s| {
            assert_eq!(s, format!("s{i}"));
            s
        });
        assert_eq!(out, expect);
    }

    #[test]
    fn mut_variant_mutates_in_place_and_returns_in_order() {
        let mut items: Vec<u64> = (0..57).collect();
        for jobs in [1, 2, 8] {
            let out = par_map_mut(jobs, &mut items, |i, x| {
                *x += 1;
                (i, *x)
            });
            for (i, &(idx, val)) in out.iter().enumerate() {
                assert_eq!(idx, i, "jobs={jobs}");
                assert_eq!(val, items[i], "jobs={jobs}");
            }
        }
        // Three passes, each +1 per element.
        let expect: Vec<u64> = (0..57).map(|x| x + 3).collect();
        assert_eq!(items, expect);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[5u32], |_, &x| x + 1), vec![6]);
        assert_eq!(par_map_owned(8, vec![5u32], |_, x| x + 1), vec![6]);
        assert_eq!(par_map_mut(8, &mut [5u32], |_, x| *x + 1), vec![6]);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(0, &items, |_, &x| x), vec![1, 2, 3]);
    }

    #[test]
    fn panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let res = std::panic::catch_unwind(|| {
            par_map(4, &items, |_, &x| {
                assert!(x != 7, "boom");
                x
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn jobs_env_override_is_respected() {
        // jobs() itself reads the environment; exercise the parser on
        // representative values without mutating the test process env.
        assert!(jobs() >= 1);
    }
}
