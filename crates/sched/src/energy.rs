//! Step 2 — energy-efficiency optimization (Section V): spend the latency
//! slack left by Step 1 on lower-power implementations, in descending
//! energy-priority order, re-timing the schedule after every tentative swap
//! and keeping only swaps that still meet the QoS bound.

use crate::priority::{by_descending_priority, energy_priorities};
use crate::timeline::{schedule, Choice};
use crate::{Pool, ScheduleError, SchedulePlan};
use poly_device::{DeviceKind, PcieLink};
use poly_dse::KernelDesignSpace;
use poly_ir::{KernelGraph, KernelId};

/// Extract the pinned `(kind, impl_index)` selection of an existing plan.
fn pins_of(plan: &SchedulePlan) -> Vec<(DeviceKind, usize)> {
    plan.assignments
        .iter()
        .map(|a| (a.kind, a.impl_index))
        .collect()
}

/// Improve `plan` in place by implementation swaps while `latency_bound_ms`
/// holds. Returns the improved plan (which may be the input plan when no
/// swap is feasible).
pub(crate) fn optimize(
    graph: &KernelGraph,
    spaces: &[KernelDesignSpace],
    pool: &Pool,
    pcie: &PcieLink,
    order: &[KernelId],
    plan: SchedulePlan,
    latency_bound_ms: f64,
) -> Result<SchedulePlan, ScheduleError> {
    let mut current = plan;
    let mut pins = pins_of(&current);
    // Each kernel can be re-chosen several times as slack shifts, but the
    // loop must terminate: every accepted swap strictly reduces energy.
    let max_rounds = graph.len() * 8 + 8;
    for _ in 0..max_rounds {
        let chosen_energy: Vec<f64> = current.assignments.iter().map(|a| a.dynamic_mj).collect();
        let w_e = energy_priorities(spaces, &chosen_energy);
        let mut improved = false;
        for kid in by_descending_priority(&w_e) {
            if w_e[kid.0] <= 0.0 {
                break; // descending order: nothing further can improve
            }
            if let Some(better) = try_swap(
                graph,
                spaces,
                pool,
                pcie,
                order,
                &current,
                &pins,
                kid,
                latency_bound_ms,
            )? {
                pins = pins_of(&better);
                current = better;
                improved = true;
                break; // recompute priorities against the new slack
            }
        }
        if !improved {
            break;
        }
    }
    Ok(current)
}

/// Try every alternative implementation of `kid` in ascending energy
/// order; return the first re-timed plan that lowers total energy and
/// still meets the bound.
#[allow(clippy::too_many_arguments)]
fn try_swap(
    graph: &KernelGraph,
    spaces: &[KernelDesignSpace],
    pool: &Pool,
    pcie: &PcieLink,
    order: &[KernelId],
    current: &SchedulePlan,
    pins: &[(DeviceKind, usize)],
    kid: KernelId,
    latency_bound_ms: f64,
) -> Result<Option<SchedulePlan>, ScheduleError> {
    let space = &spaces[kid.0];
    let current_energy = current.assignments[kid.0].dynamic_mj;

    let mut alternatives: Vec<(DeviceKind, usize, f64)> = Vec::new();
    for kind in [DeviceKind::Gpu, DeviceKind::Fpga] {
        if !pool.has(kind) {
            continue;
        }
        for point in space.points(kind) {
            if point.dynamic_energy_mj() < current_energy {
                alternatives.push((kind, point.index, point.dynamic_energy_mj()));
            }
        }
    }
    alternatives.sort_by(|a, b| a.2.total_cmp(&b.2));

    for (kind, index, _) in alternatives {
        let mut pinned = pins.to_vec();
        pinned[kid.0] = (kind, index);
        let candidate = schedule(graph, spaces, pool, pcie, order, Choice::Pinned(&pinned))?;
        if candidate.meets(latency_bound_ms) && candidate.dynamic_mj < current.dynamic_mj - 1e-9 {
            return Ok(Some(candidate));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::latency_priorities;
    use poly_device::catalog;
    use poly_dse::Explorer;
    use poly_ir::{KernelBuilder, KernelGraphBuilder, OpFunc, PatternKind, Shape};

    fn setup() -> (KernelGraph, Vec<KernelDesignSpace>) {
        let k = KernelBuilder::new("t")
            .pattern("m", PatternKind::Map, Shape::d2(512, 128), &[OpFunc::Mac])
            .iterations(300)
            .build()
            .unwrap();
        let app = KernelGraphBuilder::new("app")
            .kernel(k.with_name("a"))
            .kernel(k.with_name("b"))
            .edge("a", "b", 1 << 18)
            .build()
            .unwrap();
        let ex = Explorer::new(catalog::amd_w9100(), catalog::xilinx_7v3());
        let spaces = app.kernels().iter().map(|k| ex.explore(k)).collect();
        (app, spaces)
    }

    fn step1(
        graph: &KernelGraph,
        spaces: &[KernelDesignSpace],
        pool: &Pool,
    ) -> (Vec<KernelId>, SchedulePlan) {
        let pcie = PcieLink::gen3_x16();
        let order = by_descending_priority(&latency_priorities(graph, spaces, &pcie));
        let plan = schedule(graph, spaces, pool, &pcie, &order, Choice::Free).unwrap();
        (order, plan)
    }

    #[test]
    fn generous_slack_lowers_energy() {
        let (app, spaces) = setup();
        let pool = Pool::heterogeneous(1, 2);
        let (order, fast) = step1(&app, &spaces, &pool);
        let bound = fast.makespan_ms * 10.0;
        let eff = optimize(
            &app,
            &spaces,
            &pool,
            &PcieLink::gen3_x16(),
            &order,
            fast.clone(),
            bound,
        )
        .unwrap();
        assert!(eff.dynamic_mj <= fast.dynamic_mj);
        assert!(eff.meets(bound));
        // With 10× slack at least one kernel should have moved to a more
        // efficient implementation.
        assert!(eff.dynamic_mj < fast.dynamic_mj, "{eff:?}");
    }

    #[test]
    fn zero_slack_keeps_fast_plan() {
        let (app, spaces) = setup();
        let pool = Pool::heterogeneous(1, 2);
        let (order, fast) = step1(&app, &spaces, &pool);
        let bound = fast.makespan_ms; // no slack at all
        let eff = optimize(
            &app,
            &spaces,
            &pool,
            &PcieLink::gen3_x16(),
            &order,
            fast.clone(),
            bound,
        )
        .unwrap();
        assert!(eff.meets(bound));
        // Energy can only stay equal or improve via equal-latency swaps.
        assert!(eff.dynamic_mj <= fast.dynamic_mj + 1e-9);
    }

    #[test]
    fn optimizer_never_violates_bound() {
        let (app, spaces) = setup();
        let pool = Pool::heterogeneous(1, 1);
        let (order, fast) = step1(&app, &spaces, &pool);
        for mult in [1.0, 1.2, 2.0, 5.0] {
            let bound = fast.makespan_ms * mult;
            let eff = optimize(
                &app,
                &spaces,
                &pool,
                &PcieLink::gen3_x16(),
                &order,
                fast.clone(),
                bound,
            )
            .unwrap();
            assert!(eff.meets(bound), "violated at mult {mult}");
        }
    }

    #[test]
    fn more_slack_never_costs_energy() {
        let (app, spaces) = setup();
        let pool = Pool::heterogeneous(1, 2);
        let (order, fast) = step1(&app, &spaces, &pool);
        let mut last = f64::INFINITY;
        for mult in [1.0, 1.5, 2.5, 6.0, 20.0] {
            let eff = optimize(
                &app,
                &spaces,
                &pool,
                &PcieLink::gen3_x16(),
                &order,
                fast.clone(),
                fast.makespan_ms * mult,
            )
            .unwrap();
            assert!(eff.dynamic_mj <= last + 1e-9, "energy rose with slack");
            last = eff.dynamic_mj;
        }
    }
}
