use poly_device::DeviceKind;
use std::fmt;

/// Index of a device within a [`Pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// The accelerator pool of one leaf node: an ordered list of device kinds
/// (e.g. one GPU and five FPGAs for the Setting-I Heter-Poly node).
///
/// The scheduler only needs each device's kind; the concrete performance
/// comes from the per-kernel design spaces, and runtime state (occupancy,
/// loaded bitstream) lives in the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pool {
    kinds: Vec<DeviceKind>,
}

impl Pool {
    /// Pool from an explicit kind list.
    #[must_use]
    pub fn new(kinds: &[DeviceKind]) -> Self {
        Self {
            kinds: kinds.to_vec(),
        }
    }

    /// Pool from any ordered kind sequence — the capability-driven
    /// constructor: a backend client advertises its devices and the pool
    /// is derived from them (see `poly_backend::accel_pool`).
    #[must_use]
    pub fn from_kinds(kinds: impl IntoIterator<Item = DeviceKind>) -> Self {
        Self {
            kinds: kinds.into_iter().collect(),
        }
    }

    /// Pool with `gpus` GPUs followed by `fpgas` FPGAs.
    ///
    /// ```rust
    /// use poly_sched::Pool;
    /// let p = Pool::heterogeneous(1, 5);
    /// assert_eq!(p.len(), 6);
    /// ```
    #[must_use]
    pub fn heterogeneous(gpus: usize, fpgas: usize) -> Self {
        let kinds = std::iter::repeat_n(DeviceKind::Gpu, gpus)
            .chain(std::iter::repeat_n(DeviceKind::Fpga, fpgas));
        Self::from_kinds(kinds)
    }

    /// Device kinds in id order.
    #[must_use]
    pub fn kinds(&self) -> &[DeviceKind] {
        &self.kinds
    }

    /// Kind of one device.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn kind(&self, id: DeviceId) -> DeviceKind {
        self.kinds[id.0]
    }

    /// Number of devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the pool has no devices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Number of devices of `kind`.
    #[must_use]
    pub fn count(&self, kind: DeviceKind) -> usize {
        self.kinds.iter().filter(|&&k| k == kind).count()
    }

    /// Ids of the devices of `kind`.
    pub fn devices_of(&self, kind: DeviceKind) -> impl Iterator<Item = DeviceId> + '_ {
        self.kinds
            .iter()
            .enumerate()
            .filter(move |(_, &k)| k == kind)
            .map(|(i, _)| DeviceId(i))
    }

    /// Whether the pool contains at least one device of `kind`.
    #[must_use]
    pub fn has(&self, kind: DeviceKind) -> bool {
        self.count(kind) > 0
    }

    /// The capability subset keeping devices for which `keep` holds —
    /// the single degradation primitive [`without_device`](Self::without_device)
    /// and [`subset`](Self::subset) are both expressed through. Ids
    /// compact (the surviving devices renumber from 0), matching what a
    /// backend would advertise after losing hardware.
    fn retained(&self, keep: impl Fn(usize) -> bool) -> Self {
        Self::from_kinds(
            self.kinds
                .iter()
                .enumerate()
                .filter(|&(i, _)| keep(i))
                .map(|(_, &k)| k),
        )
    }

    /// The pool with device `id` removed — the degraded pool after a
    /// fail-stop. Returns `self` unchanged if `id` is out of range.
    #[must_use]
    pub fn without_device(&self, id: DeviceId) -> Self {
        self.retained(|i| i != id.0)
    }

    /// The pool restricted to devices whose `healthy` flag is set (missing
    /// entries count as healthy) — what remains to plan against after an
    /// arbitrary set of failures.
    #[must_use]
    pub fn subset(&self, healthy: &[bool]) -> Self {
        self.retained(|i| healthy.get(i).copied().unwrap_or(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneous_layout() {
        let p = Pool::heterogeneous(2, 3);
        assert_eq!(p.count(DeviceKind::Gpu), 2);
        assert_eq!(p.count(DeviceKind::Fpga), 3);
        assert_eq!(p.kind(DeviceId(0)), DeviceKind::Gpu);
        assert_eq!(p.kind(DeviceId(4)), DeviceKind::Fpga);
    }

    #[test]
    fn devices_of_filters_by_kind() {
        let p = Pool::heterogeneous(1, 2);
        let fpgas: Vec<DeviceId> = p.devices_of(DeviceKind::Fpga).collect();
        assert_eq!(fpgas, vec![DeviceId(1), DeviceId(2)]);
    }

    #[test]
    fn empty_pool() {
        let p = Pool::new(&[]);
        assert!(p.is_empty());
        assert!(!p.has(DeviceKind::Gpu));
    }

    #[test]
    fn without_device_degrades_pool() {
        let p = Pool::heterogeneous(1, 2);
        let no_gpu = p.without_device(DeviceId(0));
        assert_eq!(no_gpu.count(DeviceKind::Gpu), 0);
        assert_eq!(no_gpu.count(DeviceKind::Fpga), 2);
        // Out-of-range removal is a no-op.
        assert_eq!(p.without_device(DeviceId(99)), p);
        // Chained failures can empty the pool entirely.
        let none = no_gpu
            .without_device(DeviceId(0))
            .without_device(DeviceId(0));
        assert!(none.is_empty());
    }

    #[test]
    fn subset_keeps_healthy_devices() {
        let p = Pool::heterogeneous(2, 3);
        let degraded = p.subset(&[false, true, true, false, true]);
        assert_eq!(degraded.count(DeviceKind::Gpu), 1);
        assert_eq!(degraded.count(DeviceKind::Fpga), 2);
        // Missing entries count as healthy; an all-true mask is identity.
        assert_eq!(p.subset(&[false]), Pool::heterogeneous(1, 3));
        assert_eq!(p.subset(&[true; 5]), p);
        assert_eq!(p.subset(&[]), p);
    }

    #[test]
    fn without_device_on_unknown_id_is_identity() {
        let p = Pool::heterogeneous(1, 2);
        // First out-of-range id and a far-out one both leave every device
        // in place, ids unshifted.
        assert_eq!(p.without_device(DeviceId(3)), p);
        assert_eq!(p.without_device(DeviceId(usize::MAX)), p);
        assert_eq!(
            p.without_device(DeviceId(3)).kind(DeviceId(0)),
            DeviceKind::Gpu
        );
        // The empty pool has no valid id at all.
        let empty = Pool::new(&[]);
        assert_eq!(empty.without_device(DeviceId(0)), empty);
    }

    #[test]
    fn without_device_removes_last_of_a_kind() {
        // Removing the only GPU leaves an FPGA-only pool that reports the
        // platform as absent — what the optimizer re-plans against after
        // the failure.
        let p = Pool::heterogeneous(1, 2);
        let no_gpu = p.without_device(DeviceId(0));
        assert!(!no_gpu.has(DeviceKind::Gpu));
        assert!(no_gpu.devices_of(DeviceKind::Gpu).next().is_none());
        assert_eq!(no_gpu.len(), 2);
        // Device ids compact: the former d1 (FPGA) is now d0.
        assert_eq!(no_gpu.kind(DeviceId(0)), DeviceKind::Fpga);
        // Removing the only FPGA of a 1-FPGA pool likewise empties the kind.
        let one_fpga = Pool::heterogeneous(2, 1);
        let no_fpga = one_fpga.without_device(DeviceId(2));
        assert!(!no_fpga.has(DeviceKind::Fpga));
        assert_eq!(no_fpga.count(DeviceKind::Gpu), 2);
    }

    #[test]
    fn from_kinds_preserves_order_and_matches_heterogeneous() {
        let kinds = [DeviceKind::Gpu, DeviceKind::Fpga, DeviceKind::Fpga];
        let p = Pool::from_kinds(kinds);
        assert_eq!(p.kinds(), &kinds);
        assert_eq!(p, Pool::heterogeneous(1, 2));
        // An interleaved (non-heterogeneous) layout round-trips too.
        let mixed = [DeviceKind::Fpga, DeviceKind::Gpu, DeviceKind::Fpga];
        assert_eq!(Pool::from_kinds(mixed).kinds(), &mixed);
        assert!(Pool::from_kinds([]).is_empty());
    }

    #[test]
    fn subset_with_all_false_mask_is_empty() {
        let p = Pool::heterogeneous(2, 3);
        let none = p.subset(&[false; 5]);
        assert!(none.is_empty());
        assert_eq!(none.len(), 0);
        assert!(!none.has(DeviceKind::Gpu));
        assert!(!none.has(DeviceKind::Fpga));
        // Subset of the empty pool stays empty regardless of the mask.
        assert!(Pool::new(&[]).subset(&[true, false]).is_empty());
    }
}
