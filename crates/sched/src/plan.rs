use crate::DeviceId;
use poly_device::DeviceKind;
use poly_ir::KernelId;

/// Placement of one kernel: implementation `r` of kernel `i` on device `n`
/// (the `(K_i^r, Device)` tuples of Fig. 6), with its scheduled window.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The kernel.
    pub kernel: KernelId,
    /// The chosen device.
    pub device: DeviceId,
    /// The device's platform kind (redundant with the pool, kept for
    /// self-contained plans).
    pub kind: DeviceKind,
    /// Index `r` into the kernel's Pareto frontier on that platform.
    pub impl_index: usize,
    /// Scheduled start, in milliseconds from request arrival.
    pub start_ms: f64,
    /// Scheduled finish (`T_end(k_j)` of Eq. 4).
    pub end_ms: f64,
    /// Predicted active power of the implementation, in watts.
    pub power_w: f64,
    /// Predicted energy of the execution, in millijoules.
    pub energy_mj: f64,
    /// Predicted dynamic (above-idle) energy of the execution, in
    /// millijoules — the energy step's objective.
    pub dynamic_mj: f64,
    /// Predicted per-request device occupancy of the implementation.
    pub service_ms: f64,
}

impl Assignment {
    /// Execution duration in milliseconds.
    #[must_use]
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// A complete schedule of one application request across the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulePlan {
    /// Per-kernel assignments, indexed by [`KernelId`].
    pub assignments: Vec<Assignment>,
    /// End-to-end latency of the request (`L` of Section V).
    pub makespan_ms: f64,
    /// Total predicted energy across kernels, in millijoules.
    pub energy_mj: f64,
    /// Total predicted dynamic energy across kernels, in millijoules.
    pub dynamic_mj: f64,
}

impl SchedulePlan {
    /// Assignment of one kernel.
    ///
    /// # Panics
    /// Panics if `kernel` is out of range for the planned graph.
    #[must_use]
    pub fn assignment(&self, kernel: KernelId) -> &Assignment {
        &self.assignments[kernel.0]
    }

    /// Latency slack against a QoS bound (`LB - L`); negative when the
    /// plan violates the bound.
    #[must_use]
    pub fn slack_ms(&self, latency_bound_ms: f64) -> f64 {
        latency_bound_ms - self.makespan_ms
    }

    /// Whether the plan meets the QoS bound.
    #[must_use]
    pub fn meets(&self, latency_bound_ms: f64) -> bool {
        self.makespan_ms <= latency_bound_ms
    }

    /// Sum of per-kernel device occupancy on the given platform, in
    /// milliseconds — the demand one request places on that platform.
    #[must_use]
    pub fn service_demand_ms(&self, kind: DeviceKind) -> f64 {
        self.assignments
            .iter()
            .filter(|a| a.kind == kind)
            .map(|a| a.service_ms)
            .sum()
    }

    /// Average power the request draws while executing, in watts
    /// (energy / makespan).
    #[must_use]
    pub fn avg_power_w(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            0.0
        } else {
            self.energy_mj / self.makespan_ms
        }
    }
}

impl SchedulePlan {
    /// Check the structural invariants of the plan against its graph:
    /// every dependency's consumer starts after its producer ends, no two
    /// kernels overlap on one device, and the makespan equals the latest
    /// finish. Returns the first violation as text.
    ///
    /// # Errors
    /// Returns a human-readable description of the violated invariant.
    pub fn validate(&self, graph: &poly_ir::KernelGraph) -> Result<(), String> {
        if self.assignments.len() != graph.len() {
            return Err(format!(
                "{} assignments for {} kernels",
                self.assignments.len(),
                graph.len()
            ));
        }
        for e in graph.edges() {
            let from = &self.assignments[e.from.0];
            let to = &self.assignments[e.to.0];
            if to.start_ms < from.end_ms - 1e-6 {
                return Err(format!(
                    "dependency violated: {} ends {:.3} but {} starts {:.3}",
                    e.from, from.end_ms, e.to, to.start_ms
                ));
            }
        }
        for a in &self.assignments {
            for b in &self.assignments {
                if a.kernel != b.kernel
                    && a.device == b.device
                    && a.end_ms > b.start_ms + 1e-6
                    && b.end_ms > a.start_ms + 1e-6
                {
                    return Err(format!(
                        "device overlap on {}: {} and {}",
                        a.device, a.kernel, b.kernel
                    ));
                }
            }
        }
        let latest = self
            .assignments
            .iter()
            .map(|a| a.end_ms)
            .fold(0.0_f64, f64::max);
        if (latest - self.makespan_ms).abs() > 1e-6 {
            return Err(format!(
                "makespan {:.3} != latest finish {:.3}",
                self.makespan_ms, latest
            ));
        }
        Ok(())
    }
}

impl std::fmt::Display for SchedulePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "plan: makespan {:.1} ms, energy {:.0} mJ ({:.0} mJ dynamic)",
            self.makespan_ms, self.energy_mj, self.dynamic_mj
        )?;
        for a in &self.assignments {
            writeln!(
                f,
                "  {}^{} -> {} on {} [{:.1}..{:.1} ms]",
                a.kernel, a.impl_index, a.kind, a.device, a.start_ms, a.end_ms
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> SchedulePlan {
        SchedulePlan {
            assignments: vec![
                Assignment {
                    kernel: KernelId(0),
                    device: DeviceId(0),
                    kind: DeviceKind::Gpu,
                    impl_index: 2,
                    start_ms: 0.0,
                    end_ms: 50.0,
                    power_w: 200.0,
                    energy_mj: 10_000.0,
                    dynamic_mj: 9_000.0,
                    service_ms: 25.0,
                },
                Assignment {
                    kernel: KernelId(1),
                    device: DeviceId(1),
                    kind: DeviceKind::Fpga,
                    impl_index: 0,
                    start_ms: 50.0,
                    end_ms: 120.0,
                    power_w: 20.0,
                    energy_mj: 1_400.0,
                    dynamic_mj: 1_000.0,
                    service_ms: 70.0,
                },
            ],
            makespan_ms: 120.0,
            energy_mj: 11_400.0,
            dynamic_mj: 10_000.0,
        }
    }

    #[test]
    fn slack_and_bound() {
        let p = plan();
        assert!((p.slack_ms(200.0) - 80.0).abs() < 1e-9);
        assert!(p.meets(200.0));
        assert!(!p.meets(100.0));
    }

    #[test]
    fn service_demand_by_platform() {
        let p = plan();
        assert_eq!(p.service_demand_ms(DeviceKind::Gpu), 25.0);
        assert_eq!(p.service_demand_ms(DeviceKind::Fpga), 70.0);
    }

    #[test]
    fn avg_power_is_energy_over_makespan() {
        let p = plan();
        assert!((p.avg_power_w() - 11_400.0 / 120.0).abs() < 1e-9);
    }

    #[test]
    fn duration_from_window() {
        assert!((plan().assignment(KernelId(1)).duration_ms() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn validate_accepts_a_consistent_plan() {
        use poly_ir::{KernelBuilder, KernelGraphBuilder, OpFunc, PatternKind, Shape};
        let k = KernelBuilder::new("a")
            .pattern("m", PatternKind::Map, Shape::d1(8), &[OpFunc::Add])
            .build()
            .unwrap();
        let g = KernelGraphBuilder::new("app")
            .kernel(k.clone())
            .kernel(k.with_name("b"))
            .edge("a", "b", 64)
            .build()
            .unwrap();
        let p = plan();
        assert!(p.validate(&g).is_ok());

        // Break the dependency: consumer starts before producer ends.
        let mut broken = p.clone();
        broken.assignments[1].start_ms = 10.0;
        assert!(broken.validate(&g).unwrap_err().contains("dependency"));

        // Break device exclusivity (use an edgeless graph so the
        // dependency check cannot fire first).
        let g2 = KernelGraphBuilder::new("app2")
            .kernel(k.with_name("a"))
            .kernel(k.with_name("b"))
            .build()
            .unwrap();
        let mut broken = p.clone();
        broken.assignments[1].device = broken.assignments[0].device;
        broken.assignments[1].start_ms = 25.0;
        assert!(broken.validate(&g2).unwrap_err().contains("overlap"));

        // Break the makespan bookkeeping.
        let mut broken = p;
        broken.makespan_ms = 1.0;
        assert!(broken.validate(&g).unwrap_err().contains("makespan"));
    }

    #[test]
    fn display_lists_every_assignment() {
        let text = plan().to_string();
        assert!(text.contains("makespan 120.0 ms"));
        assert!(text.contains("k0^2 -> gpu on d0"));
        assert!(text.contains("k1^0 -> fpga on d1"));
    }
}
