use std::fmt;

/// Error raised while planning a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A kernel has no feasible implementation on any platform present in
    /// the device pool.
    NoImplementation {
        /// The kernel without an implementation.
        kernel: String,
    },
    /// The design-space list does not align with the kernel graph
    /// (different length or different kernel names).
    SpaceMismatch {
        /// What mismatched.
        detail: String,
    },
    /// The device pool is empty.
    EmptyPool,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoImplementation { kernel } => {
                write!(
                    f,
                    "kernel `{kernel}` has no feasible implementation in the pool"
                )
            }
            ScheduleError::SpaceMismatch { detail } => {
                write!(f, "design spaces do not match kernel graph: {detail}")
            }
            ScheduleError::EmptyPool => write!(f, "device pool is empty"),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_kernel() {
        let e = ScheduleError::NoImplementation {
            kernel: "k3".into(),
        };
        assert!(e.to_string().contains("k3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<ScheduleError>();
    }
}
