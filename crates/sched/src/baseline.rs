//! Static homogeneous baselines — the Sirius-style \[4\] hard mapping the
//! paper compares against: every kernel on one platform, one fixed
//! implementation per kernel, no runtime adaptation ("the allocation scheme
//! ... is fixed across different load intensities by using only one
//! implementation with the maximum energy efficiency or minimum latency
//! depending on the latency constraint", Section VI-A).

use crate::priority::{by_descending_priority, latency_priorities};
use crate::timeline::{schedule, Choice};
use crate::{Pool, ScheduleError, SchedulePlan};
use poly_device::{DeviceKind, PcieLink};
use poly_dse::KernelDesignSpace;
use poly_ir::KernelGraph;

/// Implementation selection rule of a static baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticPolicy {
    /// Always the minimum-latency implementation.
    MinLatency,
    /// The most energy-efficient implementation whose latency stays within
    /// the application bound; falls back to minimum latency when none does.
    MaxEfficiency {
        /// The application QoS bound in milliseconds.
        latency_bound_ms: u32,
    },
}

/// Plan an application on a homogeneous pool with a fixed per-kernel
/// implementation chosen by `policy`.
///
/// # Errors
/// Returns [`ScheduleError::NoImplementation`] when some kernel has no
/// implementation on `kind`, and the usual validation errors otherwise.
pub fn static_plan(
    graph: &KernelGraph,
    spaces: &[KernelDesignSpace],
    pool: &Pool,
    kind: DeviceKind,
    policy: StaticPolicy,
    pcie: &PcieLink,
) -> Result<SchedulePlan, ScheduleError> {
    let order = by_descending_priority(&latency_priorities(graph, spaces, pcie));

    // Fastest pins available on this platform (and the fallback plan).
    let mut fast_pins = Vec::with_capacity(graph.len());
    for (kernel, space) in graph.kernels().iter().zip(spaces) {
        let point = space
            .min_latency(kind)
            .ok_or_else(|| ScheduleError::NoImplementation {
                kernel: kernel.name().to_string(),
            })?;
        fast_pins.push((kind, point.index));
    }
    let fast = schedule(
        graph,
        spaces,
        pool,
        pcie,
        &order,
        Choice::Pinned(&fast_pins),
    )?;

    let StaticPolicy::MaxEfficiency { latency_bound_ms } = policy else {
        return Ok(fast);
    };
    let bound = f64::from(latency_bound_ms);
    if fast.makespan_ms >= bound {
        // No slack at all: the fastest static mapping is the baseline.
        return Ok(fast);
    }

    // Distribute the application-level slack proportionally: each kernel
    // may slow down by the same factor the whole graph can afford.
    let factor = bound / fast.makespan_ms;
    let mut pins = Vec::with_capacity(graph.len());
    for (i, (kernel, space)) in graph.kernels().iter().zip(spaces).enumerate() {
        let cap = fast.assignments[i].duration_ms() * factor;
        let point = space
            .most_efficient_within(kind, cap)
            .or_else(|| space.min_latency(kind))
            .ok_or_else(|| ScheduleError::NoImplementation {
                kernel: kernel.name().to_string(),
            })?;
        pins.push((kind, point.index));
    }
    let eff = schedule(graph, spaces, pool, pcie, &order, Choice::Pinned(&pins))?;
    // Proportional caps can still overshoot when paths share devices; the
    // crude static baseline then falls back to its fast mapping.
    if eff.meets(bound) {
        Ok(eff)
    } else {
        Ok(fast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_device::catalog;
    use poly_dse::Explorer;
    use poly_ir::{KernelBuilder, KernelGraphBuilder, OpFunc, PatternKind, Shape};

    fn setup() -> (KernelGraph, Vec<KernelDesignSpace>) {
        let k = KernelBuilder::new("t")
            .pattern("m", PatternKind::Map, Shape::d2(1024, 128), &[OpFunc::Mac])
            .iterations(300)
            .build()
            .unwrap();
        let app = KernelGraphBuilder::new("app")
            .kernel(k.with_name("a"))
            .kernel(k.with_name("b"))
            .edge("a", "b", 1 << 18)
            .build()
            .unwrap();
        let ex = Explorer::new(catalog::amd_w9100(), catalog::xilinx_7v3());
        let spaces = app.kernels().iter().map(|k| ex.explore(k)).collect();
        (app, spaces)
    }

    #[test]
    fn min_latency_policy_is_fastest_static_option() {
        let (app, spaces) = setup();
        let pool = Pool::heterogeneous(0, 4);
        let pcie = PcieLink::gen3_x16();
        let fast = static_plan(
            &app,
            &spaces,
            &pool,
            DeviceKind::Fpga,
            StaticPolicy::MinLatency,
            &pcie,
        )
        .unwrap();
        let eff = static_plan(
            &app,
            &spaces,
            &pool,
            DeviceKind::Fpga,
            StaticPolicy::MaxEfficiency {
                latency_bound_ms: 10_000,
            },
            &pcie,
        )
        .unwrap();
        assert!(fast.makespan_ms <= eff.makespan_ms + 1e-9);
        assert!(eff.dynamic_mj <= fast.dynamic_mj + 1e-9);
    }

    #[test]
    fn all_assignments_on_requested_platform() {
        let (app, spaces) = setup();
        let pcie = PcieLink::gen3_x16();
        for (kind, pool) in [
            (DeviceKind::Gpu, Pool::heterogeneous(2, 0)),
            (DeviceKind::Fpga, Pool::heterogeneous(0, 3)),
        ] {
            let plan =
                static_plan(&app, &spaces, &pool, kind, StaticPolicy::MinLatency, &pcie).unwrap();
            assert!(plan.assignments.iter().all(|a| a.kind == kind));
        }
    }

    #[test]
    fn efficiency_policy_falls_back_under_tight_bound() {
        let (app, spaces) = setup();
        let pool = Pool::heterogeneous(2, 0);
        let pcie = PcieLink::gen3_x16();
        // Bound of 1 ms: nothing qualifies, so it must fall back to the
        // min-latency implementation instead of erroring.
        let plan = static_plan(
            &app,
            &spaces,
            &pool,
            DeviceKind::Gpu,
            StaticPolicy::MaxEfficiency {
                latency_bound_ms: 1,
            },
            &pcie,
        )
        .unwrap();
        let fast = static_plan(
            &app,
            &spaces,
            &pool,
            DeviceKind::Gpu,
            StaticPolicy::MinLatency,
            &pcie,
        )
        .unwrap();
        assert_eq!(plan.makespan_ms, fast.makespan_ms);
    }
}
