//! Ablation baseline: a naive list scheduler without the latency-priority
//! list of Eqs. 2–3 — plain topological order, each kernel on its
//! minimum-latency implementation, earliest-start device.
//!
//! DESIGN.md §6 calls for quantifying the value of the `W_L` ordering;
//! [`naive_plan`] is the strawman the two-step scheduler is measured
//! against (see the `ablations` experiment and the scheduler property
//! suite).

use crate::timeline::{schedule, Choice};
use crate::{Pool, ScheduleError, SchedulePlan};
use poly_device::{DeviceKind, PcieLink};
use poly_dse::KernelDesignSpace;
use poly_ir::KernelGraph;

/// Plan with plain topological order and per-kernel minimum-latency
/// implementations (no priority list, no energy step).
///
/// # Errors
/// Same conditions as the main scheduler: mismatched spaces, empty pool,
/// or a kernel without a feasible implementation.
pub fn naive_plan(
    graph: &KernelGraph,
    spaces: &[KernelDesignSpace],
    pool: &Pool,
    pcie: &PcieLink,
) -> Result<SchedulePlan, ScheduleError> {
    let order = graph
        .topological_order()
        .map_err(|_| ScheduleError::SpaceMismatch {
            detail: "graph must be acyclic".into(),
        })?;
    let mut pins = Vec::with_capacity(graph.len());
    for (kernel, space) in graph.kernels().iter().zip(spaces) {
        let point = [DeviceKind::Gpu, DeviceKind::Fpga]
            .into_iter()
            .filter(|&k| pool.has(k))
            .filter_map(|k| space.min_latency(k))
            .min_by(|a, b| a.latency_ms().total_cmp(&b.latency_ms()))
            .ok_or_else(|| ScheduleError::NoImplementation {
                kernel: kernel.name().to_string(),
            })?;
        pins.push((point.kind, point.index));
    }
    schedule(graph, spaces, pool, pcie, &order, Choice::Pinned(&pins))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use poly_device::catalog;
    use poly_dse::Explorer;
    use poly_ir::{KernelBuilder, KernelGraphBuilder, OpFunc, PatternKind, Shape};

    fn setup() -> (KernelGraph, Vec<KernelDesignSpace>) {
        let heavy = KernelBuilder::new("t")
            .pattern("m", PatternKind::Map, Shape::d2(1024, 512), &[OpFunc::Mac])
            .iterations(2000)
            .build()
            .unwrap();
        let light = heavy.with_iterations(200);
        // Two parallel chains of unequal length: priority ordering matters.
        let app = KernelGraphBuilder::new("app")
            .kernel(heavy.with_name("a1"))
            .kernel(heavy.with_name("a2"))
            .kernel(light.with_name("b1"))
            .kernel(light.with_name("sink"))
            .edge("a1", "a2", 1 << 20)
            .edge("a2", "sink", 1 << 20)
            .edge("b1", "sink", 1 << 20)
            .build()
            .unwrap();
        let ex = Explorer::new(catalog::amd_w9100(), catalog::xilinx_7v3());
        let spaces = app.kernels().iter().map(|k| ex.explore(k)).collect();
        (app, spaces)
    }

    #[test]
    fn naive_plan_is_valid() {
        let (app, spaces) = setup();
        let plan = naive_plan(
            &app,
            &spaces,
            &Pool::heterogeneous(1, 2),
            &PcieLink::gen3_x16(),
        )
        .expect("schedulable");
        assert!(plan.makespan_ms > 0.0);
        for e in app.edges() {
            assert!(plan.assignment(e.to).start_ms >= plan.assignment(e.from).end_ms - 1e-9);
        }
    }

    #[test]
    fn heft_never_loses_to_naive() {
        let (app, spaces) = setup();
        let pool = Pool::heterogeneous(1, 2);
        let pcie = PcieLink::gen3_x16();
        let naive = naive_plan(&app, &spaces, &pool, &pcie).expect("schedulable");
        let heft = Scheduler::default()
            .plan_latency(&app, &spaces, &pool)
            .expect("schedulable");
        assert!(
            heft.makespan_ms <= naive.makespan_ms + 1e-9,
            "HEFT {} vs naive {}",
            heft.makespan_ms,
            naive.makespan_ms
        );
    }

    #[test]
    fn naive_rejects_empty_pool() {
        let (app, spaces) = setup();
        assert!(naive_plan(&app, &spaces, &Pool::new(&[]), &PcieLink::gen3_x16()).is_err());
    }
}
