//! # poly-sched — the two-step runtime kernel scheduler
//!
//! Implements Section V of the paper. Given an application kernel graph
//! `G = (K, E)`, the per-kernel design spaces produced by
//! [`poly_dse`], and a pool of accelerators:
//!
//! 1. **Latency optimization** ([`Scheduler::plan_latency`]) — build the
//!    latency priority list `W_L` (Eqs. 2–3) bottom-up, then list-schedule
//!    kernels in priority order onto the earliest-finishing
//!    (implementation, device) pair using the earliest-start-time table of
//!    Eq. 4 (HEFT/MKMD style).
//! 2. **Energy optimization** ([`Scheduler::plan`]) — compute the latency
//!    slack against the QoS bound, build the energy priority list `W_E`
//!    (Eq. 5), and greedily swap kernel implementations (possibly
//!    reallocating across platforms, as in the paper's Fig. 6 example)
//!    while the bound still holds.
//!
//! The static **Homo-GPU / Homo-FPGA baselines** of Sirius \[4\] — a fixed
//! hard mapping using one implementation (minimum latency or maximum
//! energy efficiency) — are provided by [`static_plan`].
//!
//! ```rust
//! use poly_device::{catalog, DeviceKind, PcieLink};
//! use poly_dse::Explorer;
//! use poly_ir::{KernelBuilder, KernelGraphBuilder, OpFunc, PatternKind, Shape};
//! use poly_sched::{Pool, Scheduler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let k = KernelBuilder::new("k1")
//!     .pattern("m", PatternKind::Map, Shape::d2(1024, 256), &[OpFunc::Mac])
//!     .iterations(500)
//!     .build()?;
//! let app = KernelGraphBuilder::new("app")
//!     .kernel(k.clone())
//!     .kernel(k.with_name("k2"))
//!     .edge("k1", "k2", 1 << 20)
//!     .build()?;
//! let explorer = Explorer::new(catalog::amd_w9100(), catalog::xilinx_7v3());
//! let spaces: Vec<_> = app.kernels().iter().map(|k| explorer.explore(k)).collect();
//! let pool = Pool::new(&[DeviceKind::Gpu, DeviceKind::Fpga]);
//! let plan = Scheduler::new(PcieLink::gen3_x16()).plan(&app, &spaces, &pool, 200.0)?;
//! assert!(plan.makespan_ms > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod energy;
mod error;
mod naive;
mod plan;
mod pool;
mod priority;
mod scheduler;
mod timeline;

pub use baseline::{static_plan, StaticPolicy};
pub use error::ScheduleError;
pub use naive::naive_plan;
pub use plan::{Assignment, SchedulePlan};
pub use pool::{DeviceId, Pool};
pub use priority::{energy_priorities, latency_priorities};
pub use scheduler::Scheduler;
