//! Priority lists: `W_L` (Eq. 2–3) and `W_E` (Eq. 5).

use poly_device::PcieLink;
use poly_dse::KernelDesignSpace;
use poly_ir::{KernelGraph, KernelId};

/// Latency priority `W_L(k_i)` for every kernel (Eqs. 2–3): the longest
/// remaining path from `k_i` to the sink, using each kernel's minimum
/// latency across all implementations and platforms and the PCIe transfer
/// time of each edge.
///
/// Computed bottom-up over the reversed topological order. Kernels with a
/// larger `W_L` are more latency-critical and scheduled first.
#[must_use]
pub fn latency_priorities(
    graph: &KernelGraph,
    spaces: &[KernelDesignSpace],
    pcie: &PcieLink,
) -> Vec<f64> {
    let order = graph
        .topological_order()
        .expect("validated graph is acyclic");
    let mut w = vec![0.0_f64; graph.len()];
    for &id in order.iter().rev() {
        let t_min = spaces[id.0]
            .min_latency_any()
            .map_or(f64::INFINITY, |p| p.latency_ms());
        let tail = graph
            .successors(id)
            .map(|e| pcie.transfer_ms(e.bytes) + w[e.to.0])
            .fold(0.0_f64, f64::max);
        w[id.0] = t_min + tail;
    }
    w
}

/// Energy priority `W_E(k_i)` for every kernel (Eq. 5): the maximum energy
/// reduction available by replacing the currently chosen implementation
/// with any other.
///
/// The paper's printed formula multiplies the power delta by the latency
/// delta, which is negative for exactly the beneficial trade (slower but
/// lower power); since the text defines `W_E` as "the maximum energy
/// reduction we could achieve", we implement the energy delta
/// `P(r0)·T(r0) − min_r P(r)·T(r)` directly.
///
/// `chosen` holds, per kernel, the platform points currently selected
/// (energy in millijoules).
#[must_use]
pub fn energy_priorities(spaces: &[KernelDesignSpace], chosen_energy_mj: &[f64]) -> Vec<f64> {
    spaces
        .iter()
        .zip(chosen_energy_mj)
        .map(|(space, &e0)| {
            let best = space
                .gpu
                .iter()
                .chain(space.fpga.iter())
                .map(|p| p.dynamic_energy_mj())
                .fold(f64::INFINITY, f64::min);
            (e0 - best).max(0.0)
        })
        .collect()
}

/// Kernel ids sorted by descending priority (stable: ties by ascending id).
#[must_use]
pub fn by_descending_priority(priorities: &[f64]) -> Vec<KernelId> {
    let mut ids: Vec<KernelId> = (0..priorities.len()).map(KernelId).collect();
    ids.sort_by(|a, b| {
        priorities[b.0]
            .partial_cmp(&priorities[a.0])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_device::catalog;
    use poly_dse::Explorer;
    use poly_ir::{KernelBuilder, KernelGraphBuilder, OpFunc, PatternKind, Shape};

    /// Fig. 6 shape: k1→k4, k2→k3→k4; k2's path is longer.
    fn asr_like() -> (KernelGraph, Vec<KernelDesignSpace>) {
        let small = KernelBuilder::new("t")
            .pattern("m", PatternKind::Map, Shape::d2(512, 128), &[OpFunc::Mac])
            .iterations(100)
            .build()
            .unwrap();
        let big = small.with_iterations(400);
        let app = KernelGraphBuilder::new("asr")
            .kernel(big.with_name("k1"))
            .kernel(big.with_name("k2"))
            .kernel(small.with_name("k3"))
            .kernel(small.with_name("k4"))
            .edge("k1", "k4", 1 << 20)
            .edge("k2", "k3", 1 << 20)
            .edge("k3", "k4", 1 << 20)
            .build()
            .unwrap();
        let ex = Explorer::new(catalog::amd_w9100(), catalog::xilinx_7v3());
        let spaces = app.kernels().iter().map(|k| ex.explore(k)).collect();
        (app, spaces)
    }

    #[test]
    fn upstream_kernels_have_higher_priority() {
        let (app, spaces) = asr_like();
        let w = latency_priorities(&app, &spaces, &PcieLink::gen3_x16());
        let id = |n: &str| app.id_of(n).unwrap().0;
        assert!(w[id("k2")] > w[id("k3")]);
        assert!(w[id("k3")] > w[id("k4")]);
        assert!(w[id("k1")] > w[id("k4")]);
        // k2 heads the longer (3-kernel) path, so it outranks k1.
        assert!(w[id("k2")] > w[id("k1")]);
    }

    #[test]
    fn sink_priority_is_its_own_min_latency() {
        let (app, spaces) = asr_like();
        let w = latency_priorities(&app, &spaces, &PcieLink::gen3_x16());
        let k4 = app.id_of("k4").unwrap();
        let t_min = spaces[k4.0].min_latency_any().unwrap().latency_ms();
        assert!((w[k4.0] - t_min).abs() < 1e-9);
    }

    #[test]
    fn descending_order_is_stable() {
        let order = by_descending_priority(&[1.0, 3.0, 3.0, 0.5]);
        assert_eq!(
            order,
            vec![KernelId(1), KernelId(2), KernelId(0), KernelId(3)]
        );
    }

    #[test]
    fn energy_priority_zero_when_already_optimal() {
        let (_, spaces) = asr_like();
        let best: Vec<f64> = spaces
            .iter()
            .map(|s| {
                s.gpu
                    .iter()
                    .chain(s.fpga.iter())
                    .map(|p| p.dynamic_energy_mj())
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let w = energy_priorities(&spaces, &best);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn energy_priority_positive_for_wasteful_choice() {
        let (_, spaces) = asr_like();
        // Choose the *fastest* implementation everywhere — typically not
        // the most efficient.
        let chosen: Vec<f64> = spaces
            .iter()
            .map(|s| s.min_latency_any().unwrap().dynamic_energy_mj())
            .collect();
        let w = energy_priorities(&spaces, &chosen);
        assert!(w.iter().any(|&x| x > 0.0));
    }
}
