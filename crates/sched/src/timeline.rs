//! The list scheduler core shared by the latency step, the energy step,
//! and the static baselines: place kernels in priority order using the
//! earliest-start-time table of Eq. 4.

use crate::{Assignment, DeviceId, Pool, ScheduleError, SchedulePlan};
use poly_device::{DeviceKind, PcieLink};
use poly_dse::{DesignPoint, KernelDesignSpace};
use poly_ir::{KernelGraph, KernelId};

/// How implementations are selected during placement.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Choice<'a> {
    /// HEFT-style: for each kernel pick the (implementation, device) pair
    /// with the earliest finish time across the whole pool.
    Free,
    /// Implementations are pinned per kernel as `(kind, impl_index)`; only
    /// the device among that kind is chosen (earliest start).
    Pinned(&'a [(DeviceKind, usize)]),
}

/// Validate that `spaces` aligns with `graph` and that the pool can host
/// every kernel under `choice`.
pub(crate) fn validate(
    graph: &KernelGraph,
    spaces: &[KernelDesignSpace],
    pool: &Pool,
) -> Result<(), ScheduleError> {
    if pool.is_empty() {
        return Err(ScheduleError::EmptyPool);
    }
    if spaces.len() != graph.len() {
        return Err(ScheduleError::SpaceMismatch {
            detail: format!("{} spaces for {} kernels", spaces.len(), graph.len()),
        });
    }
    for (kernel, space) in graph.kernels().iter().zip(spaces) {
        if kernel.name() != space.kernel {
            return Err(ScheduleError::SpaceMismatch {
                detail: format!(
                    "kernel `{}` paired with space `{}`",
                    kernel.name(),
                    space.kernel
                ),
            });
        }
        let feasible = (pool.has(DeviceKind::Gpu) && !space.gpu.is_empty())
            || (pool.has(DeviceKind::Fpga) && !space.fpga.is_empty());
        if !feasible {
            return Err(ScheduleError::NoImplementation {
                kernel: kernel.name().to_string(),
            });
        }
    }
    Ok(())
}

/// Run the list scheduler over `order` (which must be a topological order;
/// descending `W_L` always is).
pub(crate) fn schedule(
    graph: &KernelGraph,
    spaces: &[KernelDesignSpace],
    pool: &Pool,
    pcie: &PcieLink,
    order: &[KernelId],
    choice: Choice<'_>,
) -> Result<SchedulePlan, ScheduleError> {
    validate(graph, spaces, pool)?;
    let mut device_free = vec![0.0_f64; pool.len()];
    let mut end = vec![f64::NAN; graph.len()];
    let mut slots: Vec<Option<Assignment>> = vec![None; graph.len()];

    for &kid in order {
        let space = &spaces[kid.0];
        let mut best: Option<(f64, f64, Assignment)> = None; // (finish, energy, a)

        let consider = |point: &DesignPoint,
                        device: DeviceId,
                        best: &mut Option<(f64, f64, Assignment)>,
                        device_free: &[f64],
                        end: &[f64],
                        slots: &[Option<Assignment>]| {
            // Eq. 4: data-ready time over predecessors plus device queue.
            let ready = graph
                .predecessors(kid)
                .map(|e| {
                    let pred_end = end[e.from.0];
                    let same = slots[e.from.0].as_ref().is_some_and(|a| a.device == device);
                    pred_end + if same { 0.0 } else { pcie.transfer_ms(e.bytes) }
                })
                .fold(0.0_f64, f64::max);
            let est = ready.max(device_free[device.0]);
            let finish = est + point.latency_ms();
            let energy = point.energy_mj();
            let better = match best {
                None => true,
                Some((bf, be, _)) => {
                    finish < *bf - 1e-12 || ((finish - *bf).abs() <= 1e-12 && energy < *be)
                }
            };
            if better {
                *best = Some((
                    finish,
                    energy,
                    Assignment {
                        kernel: kid,
                        device,
                        kind: point.kind,
                        impl_index: point.index,
                        start_ms: est,
                        end_ms: finish,
                        power_w: point.power_w(),
                        energy_mj: point.energy_mj(),
                        dynamic_mj: point.dynamic_energy_mj(),
                        service_ms: point.service_ms(),
                    },
                ));
            }
        };

        match choice {
            Choice::Free => {
                for kind in [DeviceKind::Gpu, DeviceKind::Fpga] {
                    for point in space.points(kind) {
                        for device in pool.devices_of(kind) {
                            consider(point, device, &mut best, &device_free, &end, &slots);
                        }
                    }
                }
            }
            Choice::Pinned(pins) => {
                let (kind, index) = pins[kid.0];
                let point = space.points(kind).get(index).ok_or_else(|| {
                    ScheduleError::NoImplementation {
                        kernel: graph.kernel(kid).name().to_string(),
                    }
                })?;
                for device in pool.devices_of(kind) {
                    consider(point, device, &mut best, &device_free, &end, &slots);
                }
            }
        }

        let (_, _, assignment) = best.ok_or_else(|| ScheduleError::NoImplementation {
            kernel: graph.kernel(kid).name().to_string(),
        })?;
        device_free[assignment.device.0] = assignment.end_ms;
        end[kid.0] = assignment.end_ms;
        slots[kid.0] = Some(assignment);
    }

    let assignments: Vec<Assignment> = slots
        .into_iter()
        .map(|a| a.expect("every kernel scheduled"))
        .collect();
    let makespan_ms = assignments.iter().map(|a| a.end_ms).fold(0.0, f64::max);
    let energy_mj = assignments.iter().map(|a| a.energy_mj).sum();
    let dynamic_mj = assignments.iter().map(|a| a.dynamic_mj).sum();
    Ok(SchedulePlan {
        assignments,
        makespan_ms,
        energy_mj,
        dynamic_mj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::{by_descending_priority, latency_priorities};
    use poly_device::catalog;
    use poly_dse::Explorer;
    use poly_ir::{KernelBuilder, KernelGraphBuilder, OpFunc, PatternKind, Shape};

    fn setup() -> (KernelGraph, Vec<KernelDesignSpace>) {
        let k = KernelBuilder::new("t")
            .pattern("m", PatternKind::Map, Shape::d2(512, 128), &[OpFunc::Mac])
            .iterations(200)
            .build()
            .unwrap();
        let app = KernelGraphBuilder::new("app")
            .kernel(k.with_name("a"))
            .kernel(k.with_name("b"))
            .kernel(k.with_name("c"))
            .edge("a", "c", 1 << 20)
            .edge("b", "c", 1 << 20)
            .build()
            .unwrap();
        let ex = Explorer::new(catalog::amd_w9100(), catalog::xilinx_7v3());
        let spaces = app.kernels().iter().map(|k| ex.explore(k)).collect();
        (app, spaces)
    }

    fn order(graph: &KernelGraph, spaces: &[KernelDesignSpace]) -> Vec<KernelId> {
        by_descending_priority(&latency_priorities(graph, spaces, &PcieLink::gen3_x16()))
    }

    #[test]
    fn free_schedule_respects_dependencies() {
        let (app, spaces) = setup();
        let pool = Pool::heterogeneous(1, 2);
        let plan = schedule(
            &app,
            &spaces,
            &pool,
            &PcieLink::gen3_x16(),
            &order(&app, &spaces),
            Choice::Free,
        )
        .unwrap();
        let c = app.id_of("c").unwrap();
        for e in app.predecessors(c) {
            assert!(plan.assignment(c).start_ms >= plan.assignment(e.from).end_ms - 1e-9);
        }
        assert!(plan.makespan_ms > 0.0);
    }

    #[test]
    fn parallel_sources_use_different_devices() {
        let (app, spaces) = setup();
        let pool = Pool::heterogeneous(1, 1);
        let plan = schedule(
            &app,
            &spaces,
            &pool,
            &PcieLink::gen3_x16(),
            &order(&app, &spaces),
            Choice::Free,
        )
        .unwrap();
        let a = plan.assignment(app.id_of("a").unwrap());
        let b = plan.assignment(app.id_of("b").unwrap());
        // Independent kernels must not overlap on one device.
        if a.device == b.device {
            assert!(a.end_ms <= b.start_ms + 1e-9 || b.end_ms <= a.start_ms + 1e-9);
        } else {
            assert_ne!(a.device, b.device);
        }
    }

    #[test]
    fn no_device_overlap_anywhere() {
        let (app, spaces) = setup();
        let pool = Pool::heterogeneous(2, 2);
        let plan = schedule(
            &app,
            &spaces,
            &pool,
            &PcieLink::gen3_x16(),
            &order(&app, &spaces),
            Choice::Free,
        )
        .unwrap();
        for a in &plan.assignments {
            for b in &plan.assignments {
                if a.kernel != b.kernel && a.device == b.device {
                    assert!(
                        a.end_ms <= b.start_ms + 1e-9 || b.end_ms <= a.start_ms + 1e-9,
                        "overlap on {:?}: {a:?} vs {b:?}",
                        a.device
                    );
                }
            }
        }
    }

    #[test]
    fn pinned_respects_requested_platform() {
        let (app, spaces) = setup();
        let pool = Pool::heterogeneous(1, 1);
        let pins = vec![(DeviceKind::Fpga, 0); app.len()];
        let plan = schedule(
            &app,
            &spaces,
            &pool,
            &PcieLink::gen3_x16(),
            &order(&app, &spaces),
            Choice::Pinned(&pins),
        )
        .unwrap();
        assert!(plan.assignments.iter().all(|a| a.kind == DeviceKind::Fpga));
    }

    #[test]
    fn pinned_out_of_range_impl_errors() {
        let (app, spaces) = setup();
        let pool = Pool::heterogeneous(1, 1);
        let pins = vec![(DeviceKind::Gpu, 9999); app.len()];
        let err = schedule(
            &app,
            &spaces,
            &pool,
            &PcieLink::gen3_x16(),
            &order(&app, &spaces),
            Choice::Pinned(&pins),
        )
        .unwrap_err();
        assert!(matches!(err, ScheduleError::NoImplementation { .. }));
    }

    #[test]
    fn gpu_only_pool_rejected_for_mismatched_spaces() {
        let (app, spaces) = setup();
        let err = schedule(
            &app,
            &spaces[..1],
            &Pool::heterogeneous(1, 0),
            &PcieLink::gen3_x16(),
            &[KernelId(0)],
            Choice::Free,
        )
        .unwrap_err();
        assert!(matches!(err, ScheduleError::SpaceMismatch { .. }));
    }

    #[test]
    fn empty_pool_rejected() {
        let (app, spaces) = setup();
        let err = schedule(
            &app,
            &spaces,
            &Pool::new(&[]),
            &PcieLink::gen3_x16(),
            &[],
            Choice::Free,
        )
        .unwrap_err();
        assert_eq!(err, ScheduleError::EmptyPool);
    }
}
