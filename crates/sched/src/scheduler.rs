use crate::priority::{by_descending_priority, latency_priorities};
use crate::timeline::{schedule, Choice};
use crate::{energy, Pool, ScheduleError, SchedulePlan};
use poly_device::PcieLink;
use poly_dse::KernelDesignSpace;
use poly_ir::KernelGraph;

/// The Poly runtime kernel scheduler (Section V): Step 1 latency
/// optimization followed by Step 2 energy-efficiency optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduler {
    pcie: PcieLink,
}

impl Scheduler {
    /// Scheduler using the given PCIe link model for `T(e_ij)`.
    #[must_use]
    pub fn new(pcie: PcieLink) -> Self {
        Self { pcie }
    }

    /// The link model in use.
    #[must_use]
    pub fn pcie(&self) -> &PcieLink {
        &self.pcie
    }

    /// Step 1 only: the latency-optimal plan, ignoring energy.
    ///
    /// # Errors
    /// Returns [`ScheduleError`] if the spaces mismatch the graph, the pool
    /// is empty, or a kernel has no feasible implementation.
    pub fn plan_latency(
        &self,
        graph: &KernelGraph,
        spaces: &[KernelDesignSpace],
        pool: &Pool,
    ) -> Result<SchedulePlan, ScheduleError> {
        let order = by_descending_priority(&latency_priorities(graph, spaces, &self.pcie));
        schedule(graph, spaces, pool, &self.pcie, &order, Choice::Free)
    }

    /// Both steps: latency optimization, then energy optimization within
    /// `latency_bound_ms`.
    ///
    /// If even the latency-optimal plan violates the bound the plan is
    /// returned as-is (the caller decides how to react — the system
    /// optimizer treats it as an overload signal).
    ///
    /// # Errors
    /// Same conditions as [`plan_latency`](Self::plan_latency).
    pub fn plan(
        &self,
        graph: &KernelGraph,
        spaces: &[KernelDesignSpace],
        pool: &Pool,
        latency_bound_ms: f64,
    ) -> Result<SchedulePlan, ScheduleError> {
        let order = by_descending_priority(&latency_priorities(graph, spaces, &self.pcie));
        let fast = schedule(graph, spaces, pool, &self.pcie, &order, Choice::Free)?;
        if !fast.meets(latency_bound_ms) {
            return Ok(fast);
        }
        energy::optimize(
            graph,
            spaces,
            pool,
            &self.pcie,
            &order,
            fast,
            latency_bound_ms,
        )
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new(PcieLink::gen3_x16())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poly_device::{catalog, DeviceKind};
    use poly_dse::Explorer;
    use poly_ir::{KernelBuilder, KernelGraphBuilder, OpFunc, PatternKind, Shape};

    /// The four-kernel ASR shape of Fig. 6: K1→K4, K2→K3→K4.
    fn asr() -> (KernelGraph, Vec<KernelDesignSpace>) {
        let lstm = KernelBuilder::new("t")
            .pattern("m", PatternKind::Map, Shape::d2(1024, 256), &[OpFunc::Mac])
            .pattern(
                "r",
                PatternKind::Reduce,
                Shape::d2(1024, 256),
                &[OpFunc::Add],
            )
            .chain()
            .iterations(600)
            .build()
            .unwrap();
        let fc = KernelBuilder::new("t")
            .pattern("m", PatternKind::Map, Shape::d2(512, 512), &[OpFunc::Mac])
            .iterations(200)
            .build()
            .unwrap();
        let app = KernelGraphBuilder::new("asr")
            .kernel(lstm.with_name("k1"))
            .kernel(lstm.with_name("k2"))
            .kernel(fc.with_name("k3"))
            .kernel(fc.with_name("k4"))
            .edge("k1", "k4", 1 << 20)
            .edge("k2", "k3", 1 << 20)
            .edge("k3", "k4", 1 << 20)
            .build()
            .unwrap();
        let ex = Explorer::new(catalog::amd_w9100(), catalog::xilinx_7v3());
        let spaces = app.kernels().iter().map(|k| ex.explore(k)).collect();
        (app, spaces)
    }

    #[test]
    fn two_step_plan_meets_bound_and_saves_energy() {
        let (app, spaces) = asr();
        let pool = Pool::heterogeneous(1, 5);
        let sched = Scheduler::default();
        let fast = sched.plan_latency(&app, &spaces, &pool).unwrap();
        let bound = fast.makespan_ms * 3.0;
        let plan = sched.plan(&app, &spaces, &pool, bound).unwrap();
        assert!(plan.meets(bound));
        assert!(plan.dynamic_mj <= fast.dynamic_mj);
    }

    #[test]
    fn heterogeneous_plan_uses_both_platforms_given_slack() {
        let (app, spaces) = asr();
        let pool = Pool::heterogeneous(1, 5);
        let sched = Scheduler::default();
        let fast = sched.plan_latency(&app, &spaces, &pool).unwrap();
        let plan = sched
            .plan(&app, &spaces, &pool, fast.makespan_ms * 4.0)
            .unwrap();
        let kinds: std::collections::HashSet<DeviceKind> =
            plan.assignments.iter().map(|a| a.kind).collect();
        assert!(
            kinds.len() == 2 || plan.dynamic_mj < fast.dynamic_mj,
            "with generous slack the plan should exploit heterogeneity: {plan:?}"
        );
    }

    #[test]
    fn overload_returns_fast_plan_unchanged() {
        let (app, spaces) = asr();
        let pool = Pool::heterogeneous(1, 1);
        let sched = Scheduler::default();
        let fast = sched.plan_latency(&app, &spaces, &pool).unwrap();
        // Impossible bound: Step 2 must not run.
        let plan = sched.plan(&app, &spaces, &pool, 0.001).unwrap();
        assert_eq!(plan.makespan_ms, fast.makespan_ms);
        assert!(!plan.meets(0.001));
    }

    #[test]
    fn latency_plan_beats_or_matches_single_platform() {
        let (app, spaces) = asr();
        let sched = Scheduler::default();
        let het = sched
            .plan_latency(&app, &spaces, &Pool::heterogeneous(1, 5))
            .unwrap();
        let gpu_only = sched
            .plan_latency(&app, &spaces, &Pool::heterogeneous(1, 0))
            .unwrap();
        let fpga_only = sched
            .plan_latency(&app, &spaces, &Pool::heterogeneous(0, 5))
            .unwrap();
        assert!(het.makespan_ms <= gpu_only.makespan_ms + 1e-9);
        assert!(het.makespan_ms <= fpga_only.makespan_ms + 1e-9);
    }
}
